//! Experiment environment: stream, catalog, workload and statistics.

use cep_core::schema::Catalog;
use cep_core::stream::EventStream;
use cep_streamgen::{
    GeneratedStream, PatternSetKind, StockConfig, StockStreamGenerator, WorkloadConfig,
};

/// Scale knobs for an experiment run.
///
/// `quick()` finishes every figure in seconds-to-minutes on a laptop;
/// `full()` approaches the paper's scale structure (the paper's absolute
/// scale — 80.5M events, 500 patterns per set, 1.5 CPU-months — is not the
/// target; shapes are).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Number of stock symbols.
    pub symbols: usize,
    /// Stream duration (ms).
    pub duration_ms: u64,
    /// Rate multiplier over the paper's 1–45 events/s range.
    pub rate_scale: f64,
    /// Patterns per size per category.
    pub per_size: usize,
    /// Pattern sizes (the paper: 3..=7).
    pub sizes: std::ops::RangeInclusive<usize>,
    /// Pattern window (ms) (the paper: 20 minutes).
    pub window_ms: u64,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Small but shape-preserving scale.
    ///
    /// The binding constraint is the size-7 skip-till-any-match
    /// conjunction: its live partial matches scale with
    /// `Π (W·r_i · sel)` , so `window × rate_scale` is kept low enough that
    /// the *worst* plans stay measurable rather than explosive.
    pub fn quick() -> Scale {
        Scale {
            symbols: 30,
            duration_ms: 120_000, // 2 minutes
            rate_scale: 0.03,     // 0.03–1.35 events/s per symbol
            per_size: 3,
            sizes: 3..=7,
            window_ms: 5_000,
            seed: 0xCE9,
        }
    }

    /// Larger runs (tens of minutes per figure).
    pub fn full() -> Scale {
        Scale {
            symbols: 60,
            duration_ms: 600_000, // 10 minutes
            rate_scale: 0.05,
            per_size: 10,
            sizes: 3..=7,
            window_ms: 8_000,
            seed: 0xCE9,
        }
    }

    /// Applies a seed override.
    pub fn with_seed(mut self, seed: u64) -> Scale {
        self.seed = seed;
        self
    }
}

/// Shared state for one experiment: the generated stream, the catalog, and
/// the workload configuration.
pub struct ExperimentEnv {
    /// Scale used.
    pub scale: Scale,
    /// Event type catalog.
    pub catalog: Catalog,
    /// Generated stream plus symbol ground truth.
    pub gen: GeneratedStream,
    /// Workload (pattern generation) configuration.
    pub workload: WorkloadConfig,
}

impl ExperimentEnv {
    /// Generates the stream and workload configuration for a scale.
    pub fn setup(scale: Scale) -> ExperimentEnv {
        let cfg = StockConfig::nasdaq_like(
            scale.symbols,
            scale.duration_ms,
            scale.rate_scale,
            scale.seed,
        );
        let mut catalog = Catalog::new();
        let gen = StockStreamGenerator::generate(&cfg, &mut catalog)
            .expect("fresh catalog accepts all symbols");
        let workload = WorkloadConfig {
            window_ms: scale.window_ms,
            seed: scale.seed ^ 0xABCD,
        };
        ExperimentEnv {
            scale,
            catalog,
            gen,
            workload,
        }
    }

    /// The event stream.
    pub fn stream(&self) -> &EventStream {
        &self.gen.stream
    }

    /// Generates the pattern set of one category at this scale.
    pub fn pattern_set(&self, kind: PatternSetKind) -> Vec<cep_streamgen::GeneratedPattern> {
        cep_streamgen::generate_set(
            kind,
            self.scale.sizes.clone(),
            self.scale.per_size,
            &self.gen,
            &self.workload,
        )
        .expect("workload generation is infallible at sane scales")
    }
}

/// Partition-replicated stock workload shared by the sharded-scaling
/// surfaces (`figures::sharded_scaling`, `benches/sharded_throughput.rs`):
/// `replicas` decorrelated copies of a 4-symbol stock stream, plus the
/// partition-local `SEQ` query that equates `replica` across all
/// positions — the shape for which sharded evaluation is exact.
pub fn replicated_stock_workload(
    duration_ms: u64,
    rate_scale: f64,
    seed: u64,
    replicas: u32,
    window_ms: u64,
) -> (GeneratedStream, cep_core::compile::CompiledPattern) {
    let cfg = StockConfig::nasdaq_like(4, duration_ms, rate_scale, seed);
    let mut catalog = Catalog::new();
    let gen = StockStreamGenerator::generate_replicated(&cfg, replicas, &mut catalog)
        .expect("fresh catalog accepts all symbols");
    let pattern = cep_sase::parse_pattern(
        &format!(
            "PATTERN SEQ(S0000 a, S0001 b, S0002 c)
             WHERE (a.replica == b.replica AND b.replica == c.replica
                    AND a.difference < b.difference)
             WITHIN {window_ms} ms"
        ),
        &catalog,
    )
    .expect("pattern parses against the replicated catalog");
    let cp = cep_core::compile::CompiledPattern::compile_single(&pattern)
        .expect("pure conjunctive pattern");
    (gen, cp)
}

/// Cross-key stock workload shared by the cross-partition surfaces
/// (`figures::cross_partition`, `benches/cross_partition.rs`, the
/// `bench-smoke` gate): stock updates over `accounts` trading accounts
/// where the stream is partitioned by *symbol* but the query correlates by
/// *account* — the shape PR 2's split-only routing silently gets wrong.
/// The query joins the two high-rate symbols on `account` and compares
/// against the rare third symbol without any key, so a
/// `QueryPartitioner` hashes S0000/S0001 by account and replicates the
/// low-rate S0002 to every shard.
pub fn cross_key_stock_workload(
    duration_ms: u64,
    rate_scale: f64,
    seed: u64,
    accounts: u32,
    window_ms: u64,
) -> (GeneratedStream, cep_core::compile::CompiledPattern) {
    let spec = |name: &str, rate: f64, drift: f64| cep_streamgen::SymbolSpec {
        name: name.into(),
        rate_per_sec: rate * rate_scale,
        start_price: 100.0,
        drift,
        volatility: 1.0,
    };
    let cfg = StockConfig {
        symbols: vec![
            spec("S0000", 25.0, 0.4),
            spec("S0001", 20.0, 0.0),
            spec("S0002", 2.0, -0.4),
        ],
        duration_ms,
        seed,
    };
    let mut catalog = Catalog::new();
    let gen = StockStreamGenerator::generate_cross_key(&cfg, accounts, &mut catalog)
        .expect("fresh catalog accepts all symbols");
    let pattern = cep_sase::parse_pattern(
        &format!(
            "PATTERN SEQ(S0000 a, S0001 b, S0002 c)
             WHERE (a.account == b.account AND a.difference < c.difference)
             WITHIN {window_ms} ms"
        ),
        &catalog,
    )
    .expect("pattern parses against the cross-key catalog");
    let cp = cep_core::compile::CompiledPattern::compile_single(&pattern)
        .expect("pure conjunctive pattern");
    (gen, cp)
}

/// Drifting stock workload shared by the adaptive surfaces
/// (`figures::adaptive_drift`, `benches/adaptive_drift.rs`): three symbols
/// where the frequent (AAA) and rare (CCC) types swap roles after
/// `phase1_ms`, plus the `SEQ` query whose cheap evaluation order inverts
/// with them. Returns the stream, the compiled pattern, and its
/// per-predicate analytic selectivities.
pub fn drifting_stock_workload(
    phase1_ms: u64,
    phase2_ms: u64,
    seed: u64,
    window_ms: u64,
) -> (
    cep_streamgen::DriftingStream,
    cep_core::compile::CompiledPattern,
    Vec<f64>,
) {
    use cep_streamgen::{generate_drifting, DriftPhase, SymbolSpec};
    let spec = |name: &str, rate: f64, drift: f64| SymbolSpec {
        name: name.into(),
        rate_per_sec: rate,
        start_price: 100.0,
        drift,
        volatility: 1.0,
    };
    // Widely separated drifts make the difference-comparison predicates
    // selective (~0.08 each): the engines' work is dominated by partial-
    // match maintenance — what the plan order controls — rather than by
    // emitting a flood of matches.
    let base = StockConfig {
        symbols: vec![
            spec("AAA", 20.0, 2.0),
            spec("BBB", 4.0, 0.0),
            spec("CCC", 1.0, -2.0),
        ],
        duration_ms: 0, // per-phase durations below
        seed,
    };
    let phases = vec![
        DriftPhase::new(phase1_ms, vec![1.0, 1.0, 1.0]),
        DriftPhase::new(phase2_ms, vec![0.05, 1.0, 20.0]),
    ];
    let mut catalog = Catalog::new();
    let gen =
        generate_drifting(&base, &phases, &mut catalog).expect("fresh catalog accepts all symbols");
    let pattern = cep_sase::parse_pattern(
        &format!(
            "PATTERN SEQ(AAA a, BBB b, CCC c)
             WHERE (a.difference < b.difference AND b.difference < c.difference)
             WITHIN {window_ms} ms"
        ),
        &catalog,
    )
    .expect("pattern parses against the drifting catalog");
    let cp = cep_core::compile::CompiledPattern::compile_single(&pattern)
        .expect("pure conjunctive pattern");
    let sels = vec![
        base.symbols[0].lt_selectivity(&base.symbols[1]),
        base.symbols[1].lt_selectivity(&base.symbols[2]),
    ];
    (gen, cp, sels)
}

/// Selectivity-drifting stock workload shared by the selectivity-adaptive
/// surfaces (`figures::selectivity_drift`, `benches/selectivity_drift.rs`):
/// three symbols whose arrival rates never change, but whose difference
/// drifts swap after `phase1_ms` so the selective predicate moves from
/// `a.difference < c.difference` (phase 1, ~0.05) to
/// `a.difference < b.difference` (phase 2) — flipping the cheap evaluation
/// order while a rate monitor sees nothing. Returns the stream, the
/// compiled pattern, its phase-1 (bootstrap) selectivities, and its
/// phase-2 (oracle) selectivities.
pub fn selectivity_drift_workload(
    phase1_ms: u64,
    phase2_ms: u64,
    seed: u64,
    window_ms: u64,
) -> (
    cep_streamgen::SelectivityDriftStream,
    cep_core::compile::CompiledPattern,
    Vec<f64>,
    Vec<f64>,
) {
    use cep_streamgen::{generate_selectivity_drifting, SelectivityPhase, SymbolSpec};
    let spec = |name: &str, rate: f64| SymbolSpec {
        name: name.into(),
        rate_per_sec: rate,
        start_price: 100.0,
        drift: 0.0, // per-phase drifts below
        volatility: 1.0,
    };
    let base = StockConfig {
        symbols: vec![spec("AAA", 20.0), spec("BBB", 5.0), spec("CCC", 5.0)],
        duration_ms: 0, // per-phase durations below
        seed,
    };
    // Drift separation 2.33 over a pair volatility of √2 puts each
    // selectivity at ~0.05 on the tight side and ~0.95 on the loose side.
    let phases = vec![
        SelectivityPhase::new(phase1_ms, vec![0.0, 2.33, -2.33]),
        SelectivityPhase::new(phase2_ms, vec![0.0, -2.33, 2.33]),
    ];
    let mut catalog = Catalog::new();
    let gen = generate_selectivity_drifting(&base, &phases, &mut catalog)
        .expect("fresh catalog accepts all symbols");
    let pattern = cep_sase::parse_pattern(
        &format!(
            "PATTERN SEQ(AAA a, BBB b, CCC c)
             WHERE (a.difference < b.difference AND a.difference < c.difference)
             WITHIN {window_ms} ms"
        ),
        &catalog,
    )
    .expect("pattern parses against the drifting catalog");
    let cp = cep_core::compile::CompiledPattern::compile_single(&pattern)
        .expect("pure conjunctive pattern");
    let initial_sels = vec![
        gen.phase_lt_selectivity(0, 0, 1),
        gen.phase_lt_selectivity(0, 0, 2),
    ];
    let oracle_sels = vec![
        gen.phase_lt_selectivity(1, 0, 1),
        gen.phase_lt_selectivity(1, 0, 2),
    ];
    (gen, cp, initial_sels, oracle_sels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_workload_flips_the_selective_predicate() {
        let (gen, cp, initial, oracle) = selectivity_drift_workload(3_000, 3_000, 7, 1_500);
        assert!(!gen.stream.is_empty());
        assert_eq!(cp.predicates.len(), 2);
        assert!(initial[0] > 0.9 && initial[1] < 0.1, "{initial:?}");
        assert!(oracle[0] < 0.1 && oracle[1] > 0.9, "{oracle:?}");
    }

    #[test]
    fn cross_key_workload_partitions_the_high_rate_side() {
        use cep_core::partition::{QueryPartitioner, TypeDisposition};
        let (gen, cp) = cross_key_stock_workload(5_000, 0.5, 7, 8, 1_000);
        assert!(!gen.stream.is_empty());
        let stats = cep_core::stats::MeasuredStats::measure(&gen.stream);
        let spec = QueryPartitioner::analyze_measured(std::slice::from_ref(&cp), &stats).unwrap();
        assert_eq!(
            spec.disposition(gen.type_ids[0]),
            Some(TypeDisposition::Partitioned {
                attr: cep_streamgen::ATTR_ACCOUNT
            })
        );
        assert_eq!(
            spec.disposition(gen.type_ids[1]),
            Some(TypeDisposition::Partitioned {
                attr: cep_streamgen::ATTR_ACCOUNT
            })
        );
        assert_eq!(
            spec.disposition(gen.type_ids[2]),
            Some(TypeDisposition::Replicated),
            "the rare unkeyed symbol is the broadcast side"
        );
    }

    #[test]
    fn quick_env_sets_up() {
        let mut scale = Scale::quick();
        scale.duration_ms = 5_000;
        let env = ExperimentEnv::setup(scale);
        assert!(!env.stream().is_empty());
        assert_eq!(env.catalog.len(), 30);
        let set = env.pattern_set(PatternSetKind::Sequence);
        let sizes = env.scale.sizes.clone().count();
        assert_eq!(set.len(), sizes * env.scale.per_size);
    }

    #[test]
    fn seeded_envs_are_reproducible() {
        let mut scale = Scale::quick();
        scale.duration_ms = 3_000;
        let a = ExperimentEnv::setup(scale.clone());
        let b = ExperimentEnv::setup(scale);
        assert_eq!(a.stream().len(), b.stream().len());
    }
}
