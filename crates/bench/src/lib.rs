//! # cep-bench
//!
//! Benchmark harness regenerating every table and figure of Section 7 of
//! *Join Query Optimization Techniques for CEP Applications* (Kolchinsky &
//! Schuster, VLDB 2018). See `DESIGN.md` §4 for the figure-to-target index
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! * [`mod@env`] — stream/workload setup at configurable [`env::Scale`]s;
//! * [`runner`] — plan-then-execute machinery over both engines;
//! * [`figures`] — one driver per paper figure;
//! * [`smoke`] — the CI bench-regression gate (`BENCH_PR10.json`);
//! * [`analyze_demo`] — the `experiments analyze` static-analysis demo;
//! * [`observe`] — the `experiments observe` traced-run demo and the
//!   `check-obs` artifact gate;
//! * `benches/` — Criterion micro/meso benchmarks (engine throughput,
//!   planning time).
//!
//! CLI: `cargo run --release -p cep-bench --bin experiments -- all`.

#![warn(missing_docs)]

pub mod analyze_demo;
pub mod env;
pub mod figures;
pub mod observe;
pub mod report;
pub mod runner;
pub mod smoke;
