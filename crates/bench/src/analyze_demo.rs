//! The `experiments analyze` subcommand: a guided tour of the static
//! analyzer over a fixed set of demo queries, plus a plan-invariant
//! verification sweep across every planning algorithm.
//!
//! The demo is deterministic and self-contained (no stream generation),
//! so CI runs it as a smoke test: it fails if a clean query stops
//! linting clean, a seeded defect stops being detected, or any planner
//! emits a plan the `A010` verifier rejects.

use cep_analyze::{analyze_query_file, verify_order_plan, verify_tree_plan, ALL_CODES};
use cep_core::compile::CompiledPattern;
use cep_core::error::CepError;
use cep_core::stats::PatternStats;
use cep_optimizer::{OrderAlgorithm, Planner, TreeAlgorithm};
use std::io::Write;

/// One demo query: a short label, the `.sase` source, and the codes the
/// analyzer is expected to raise (empty = must lint clean).
struct Demo {
    label: &'static str,
    source: &'static str,
    expect: &'static [&'static str],
}

const DEMOS: &[Demo] = &[
    Demo {
        label: "fraud-detection (clean)",
        source: "TYPE SmallTxn(account int, amount float)\n\
                 TYPE Verify(account int)\n\
                 TYPE Withdrawal(account int, amount float)\n\
                 PATTERN SEQ(KL(SmallTxn s), NOT(Verify v), Withdrawal w)\n\
                 WHERE (s.account == w.account AND v.account == w.account \
                 AND s.amount < 50 AND w.amount >= 500)\n\
                 WITHIN 30 s\n",
        expect: &[],
    },
    Demo {
        label: "contradictory-bounds (unsatisfiable)",
        source: "TYPE Trade(price float)\n\
                 PATTERN SEQ(Trade a, Trade b)\n\
                 WHERE (a.price > 100 AND a.price < 50)\n\
                 WITHIN 5 s\n",
        expect: &["A001"],
    },
    Demo {
        label: "equality-chain-contradiction (unsatisfiable)",
        source: "TYPE Tick(v int)\n\
                 PATTERN SEQ(Tick a, Tick b, Tick c)\n\
                 WHERE (a.v == b.v AND b.v == c.v AND a.v < c.v)\n\
                 WITHIN 5 s\n",
        expect: &["A001"],
    },
    Demo {
        label: "transitive-redundancy",
        source: "TYPE Tick(v int)\n\
                 PATTERN SEQ(Tick a, Tick b, Tick c)\n\
                 WHERE (a.v < b.v AND b.v < c.v AND a.v < c.v)\n\
                 WITHIN 5 s\n",
        expect: &["A006"],
    },
    Demo {
        label: "dead-negation",
        source: "TYPE Txn(amount float)\n\
                 TYPE Audit(score int)\n\
                 PATTERN SEQ(Txn a, NOT(Audit x), Txn b)\n\
                 WHERE (x.score > 10 AND x.score < 5)\n\
                 WITHIN 10 s\n",
        expect: &["A008"],
    },
];

/// Runs the analyzer demo, printing each query's verdict; errors if any
/// expectation is violated.
pub fn run(out: &mut dyn Write) -> Result<(), CepError> {
    writeln!(out, "# static query analysis (cep-analyze)").ok();
    writeln!(out, "\n## diagnostic codes\n").ok();
    for code in ALL_CODES {
        writeln!(
            out,
            "{}  {:<7}  {}",
            code.as_str(),
            code.severity().to_string(),
            code.description()
        )
        .ok();
    }

    writeln!(out, "\n## demo queries\n").ok();
    for demo in DEMOS {
        let (_, report) = analyze_query_file(demo.source)?;
        writeln!(out, "query: {}", demo.label).ok();
        if report.is_clean() {
            writeln!(out, "  ok (no diagnostics)").ok();
        } else {
            for d in report.iter() {
                writeln!(out, "  {d}").ok();
            }
        }
        for &code in demo.expect {
            if !report.iter().any(|d| d.code.as_str() == code) {
                return Err(CepError::Plan(format!(
                    "analyze demo {:?} expected diagnostic {code}, got: {report}",
                    demo.label
                )));
            }
        }
        if demo.expect.is_empty() && !report.is_clean() {
            return Err(CepError::Plan(format!(
                "analyze demo {:?} expected a clean report, got: {report}",
                demo.label
            )));
        }
    }

    // Plan-invariant sweep: every algorithm's output must satisfy the
    // A010 verifier (release builds don't run it inside the planner, so
    // the demo exercises it explicitly).
    writeln!(out, "\n## plan-invariant verification (A010)\n").ok();
    let (_, report) = analyze_query_file(DEMOS[0].source)?;
    debug_assert!(report.is_clean());
    let qf = cep_analyze::parse_query_file(DEMOS[0].source)?;
    let branches = CompiledPattern::compile(&qf.pattern)?;
    let planner = Planner::default();
    for cp in &branches {
        let n = cp.n();
        let rates = vec![0.01; n];
        let sel = vec![vec![0.5; n]; n];
        let stats = PatternStats::synthetic(cp.window as f64, rates, sel);
        for algo in [
            OrderAlgorithm::Trivial,
            OrderAlgorithm::EFreq,
            OrderAlgorithm::Greedy,
            OrderAlgorithm::IIGreedy,
            OrderAlgorithm::DpLd,
            OrderAlgorithm::Kbz,
        ] {
            let plan = planner.plan_order(cp, &stats, algo)?;
            verify_order_plan(cp, &plan)?;
            writeln!(out, "order plan {algo:?}: {:?} verified", plan.order()).ok();
        }
        for algo in [
            TreeAlgorithm::ZStream,
            TreeAlgorithm::ZStreamOrd,
            TreeAlgorithm::DpB,
        ] {
            let plan = planner.plan_tree(cp, &stats, algo)?;
            verify_tree_plan(cp, &plan)?;
            writeln!(out, "tree plan {algo:?}: verified").ok();
        }
    }
    writeln!(out, "\nanalyze demo: all expectations met").ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_runs_clean() {
        let mut sink = Vec::new();
        run(&mut sink).unwrap();
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("all expectations met"));
        assert!(text.contains("A001"));
    }
}
