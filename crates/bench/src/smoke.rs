//! The CI bench-regression gate (`experiments bench-smoke`).
//!
//! Runs a reduced-scale version of each "beyond the paper" scenario —
//! sharded-scaling, adaptive-drift, selectivity-drift, cross-partition,
//! compiled-pipeline, delta-window-scaling, multi-query-sharing — and
//! reports, per scenario, its wall time plus a set of **deterministic
//! output counts** (match counts, plan swaps, dedup hits, …). Every
//! workload is seeded and every engine is deterministic, so the counts are
//! machine-independent; wall times are recorded for trajectory only and
//! never gated on.
//!
//! CI calls [`run`] with a committed baseline file: the current counts are
//! serialized to the same canonical JSON as the baseline and compared
//! *textually* — any divergence (a lost match, a missing swap, a dedup
//! regression) fails the job, while timing noise cannot. The full report
//! (counts + wall times) is written to `BENCH_PR10.json` as a build
//! artifact.
//!
//! The `compiled-pipeline` scenario additionally runs the same workload
//! through the interpreted predicate path and the compiled pipeline
//! (fused evaluators + arena + eager pruning): match counts and predicate
//! evaluation counts are gated like every other scenario, and the two
//! wall times are reported side by side so a compiled-path slowdown is
//! visible in every CI log.
//!
//! The `delta-window-scaling` scenario sweeps the pattern window over the
//! same rare-completion join workload on the NFA, tree, and delta
//! backends: match counts must agree exactly, and the gated peak counts
//! pin down the storage asymmetry — materializing partial matches blow up
//! superlinearly with the window while the delta engine's buffered-event
//! peak grows at most linearly and it materializes no partials at all.

use crate::env::{
    cross_key_stock_workload, drifting_stock_workload, replicated_stock_workload,
    selectivity_drift_workload,
};
use cep_core::engine::{run_to_completion, Engine, EngineConfig};
use cep_nfa::NfaEngine;
use cep_shard::{RoutingPolicy, ShardedRuntime};
use std::io::Write;
use std::time::Instant;

/// One scenario's gate data: deterministic counts plus informational
/// timing (wall time and latency percentiles).
pub struct ScenarioReport {
    /// Scenario name (stable key in the JSON output).
    pub name: &'static str,
    /// Wall time of the whole scenario in milliseconds (trajectory only).
    pub wall_ms: f64,
    /// Deterministic `(key, value)` output counts, in emission order.
    pub counts: Vec<(&'static str, u64)>,
    /// Latency percentiles `(label, [p50, p95, p99])` in ns, from the
    /// engines' log₂ histograms. Timing-dependent, so reported in the
    /// logs and the full JSON but **excluded from [`counts_json`]** — the
    /// committed baseline stays machine-independent.
    pub percentiles: Vec<(&'static str, [u64; 3])>,
    /// Named sub-run wall times in milliseconds (e.g. interpreted vs
    /// compiled). Timing-dependent like [`ScenarioReport::percentiles`]:
    /// logged and written to the full JSON, never part of the diffed
    /// baseline.
    pub walls: Vec<(&'static str, f64)>,
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        max_kleene_events: 6,
        ..Default::default()
    }
}

type ScenarioData = (Vec<(&'static str, u64)>, Vec<(&'static str, [u64; 3])>);

fn timed(name: &'static str, f: impl FnOnce() -> ScenarioData) -> ScenarioReport {
    let start = Instant::now();
    let (counts, percentiles) = f();
    ScenarioReport {
        name,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        counts,
        percentiles,
        walls: Vec::new(),
    }
}

fn sharded_scaling() -> ScenarioReport {
    timed("sharded-scaling", || {
        let (gen, cp) = replicated_stock_workload(4_000, 0.5, 0xCE9, 8, 1_500);
        let factory = {
            move || {
                Box::new(NfaEngine::with_trivial_plan(cp.clone(), engine_config()))
                    as Box<dyn Engine>
            }
        };
        let mut engine = factory();
        let serial = run_to_completion(engine.as_mut(), &gen.stream, false).match_count;
        let mut counts = vec![("serial", serial)];
        let mut percentiles = vec![(
            "serial_match_latency_ns",
            engine.metrics().match_latency_ns.percentiles(),
        )];
        for shards in [2usize, 4] {
            let r = ShardedRuntime::with_shards(shards).run(
                &factory,
                &gen.stream,
                RoutingPolicy::Partition,
                false,
            );
            counts.push((
                if shards == 2 { "shards2" } else { "shards4" },
                r.match_count,
            ));
            percentiles.push((
                if shards == 2 {
                    "shards2_match_latency_ns"
                } else {
                    "shards4_match_latency_ns"
                },
                r.metrics.match_latency_ns.percentiles(),
            ));
        }
        (counts, percentiles)
    })
}

fn adaptive_drift() -> ScenarioReport {
    use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
    use cep_optimizer::{OrderAlgorithm, Planner};
    timed("adaptive-drift", || {
        let window_ms = 3_000;
        let (gen, cp, sels) = drifting_stock_workload(5_000, 20_000, 0xCE9, window_ms);
        let replanner = PlanReplanner::new(
            vec![(cp, sels)],
            &gen.initial_stats(),
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            engine_config(),
        )
        .expect("selectivities match the pattern's predicates");
        let mut static_engine = replanner.build();
        let static_matches =
            run_to_completion(static_engine.as_mut(), &gen.stream, false).match_count;
        let mut adaptive = AdaptiveEngine::new(
            replanner,
            window_ms,
            AdaptiveConfig {
                horizon_ms: window_ms,
                drift_threshold: 0.5,
                check_every: 32,
                cooldown_events: 128,
                ..AdaptiveConfig::default()
            },
        );
        let adaptive_matches = run_to_completion(&mut adaptive, &gen.stream, false).match_count;
        let m = adaptive.metrics();
        (
            vec![
                ("static_matches", static_matches),
                ("adaptive_matches", adaptive_matches),
                ("plan_swaps", adaptive.swaps()),
            ],
            vec![
                ("event_ns", m.event_ns.percentiles()),
                ("match_latency_ns", m.match_latency_ns.percentiles()),
                ("replay_ns", m.replay_ns.percentiles()),
            ],
        )
    })
}

fn selectivity_drift() -> ScenarioReport {
    use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
    use cep_optimizer::{OrderAlgorithm, Planner};
    timed("selectivity-drift", || {
        let window_ms = 2_500;
        let (gen, cp, initial_sels, _) = selectivity_drift_workload(8_000, 8_000, 0x5E1, window_ms);
        let replanner = || {
            PlanReplanner::new(
                vec![(cp.clone(), initial_sels.clone())],
                &gen.stats(),
                Planner::default(),
                PlanKind::Order(OrderAlgorithm::DpLd),
                engine_config(),
            )
            .expect("selectivities match the pattern's predicates")
        };
        let mut static_engine = replanner().build();
        let static_matches =
            run_to_completion(static_engine.as_mut(), &gen.stream, false).match_count;
        let mut full = AdaptiveEngine::new(
            replanner().with_selectivity_monitoring(window_ms, 0.5, 512),
            window_ms,
            AdaptiveConfig {
                horizon_ms: window_ms,
                drift_threshold: 0.5,
                check_every: 32,
                cooldown_events: 128,
                ..AdaptiveConfig::default()
            },
        );
        let full_matches = run_to_completion(&mut full, &gen.stream, false).match_count;
        let m = full.metrics();
        (
            vec![
                ("static_matches", static_matches),
                ("full_adaptive_matches", full_matches),
                ("plan_swaps", full.swaps()),
            ],
            vec![
                ("event_ns", m.event_ns.percentiles()),
                ("match_latency_ns", m.match_latency_ns.percentiles()),
                ("replay_ns", m.replay_ns.percentiles()),
            ],
        )
    })
}

fn cross_partition() -> ScenarioReport {
    use cep_core::partition::QueryPartitioner;
    use cep_core::stats::MeasuredStats;
    use std::sync::Arc;
    timed("cross-partition", || {
        let (gen, cp) = cross_key_stock_workload(12_000, 0.5, 0xC0A, 32, 2_000);
        let stats = MeasuredStats::measure(&gen.stream);
        let spec = QueryPartitioner::analyze_measured(std::slice::from_ref(&cp), &stats)
            .expect("cross-key query partitions");
        let factory = {
            let cp = cp.clone();
            move || {
                Box::new(NfaEngine::with_trivial_plan(cp.clone(), engine_config()))
                    as Box<dyn Engine>
            }
        };
        let mut engine = factory();
        let serial = run_to_completion(engine.as_mut(), &gen.stream, false).match_count;
        let policy = RoutingPolicy::ReplicateJoin(Arc::new(spec));
        let mut counts = vec![("serial", serial)];
        let mut percentiles = Vec::new();
        for shards in [2usize, 4] {
            let r = ShardedRuntime::with_shards(shards).run(
                &factory,
                &gen.stream,
                policy.clone(),
                false,
            );
            if shards == 2 {
                counts.push(("shards2", r.match_count));
                counts.push(("replicated2", r.metrics.replicated_events));
                counts.push(("dedup2", r.metrics.dedup_hits));
                percentiles.push(("shards2_event_ns", r.metrics.event_ns.percentiles()));
            } else {
                counts.push(("shards4", r.match_count));
                counts.push(("replicated4", r.metrics.replicated_events));
                counts.push(("dedup4", r.metrics.dedup_hits));
                percentiles.push(("shards4_event_ns", r.metrics.event_ns.percentiles()));
            }
        }
        (counts, percentiles)
    })
}

/// Compiled pipeline vs interpreted predicates on the same seeded
/// workload, both engine families. Match counts and predicate-evaluation
/// counts are deterministic and gated against the baseline; the
/// interpreted/compiled wall times land in [`ScenarioReport::walls`] so
/// every CI log shows the speedup (and the test below holds the compiled
/// path to "not slower").
fn compiled_pipeline() -> ScenarioReport {
    use cep_tree::TreeEngine;
    let start = Instant::now();
    let (gen, cp) = replicated_stock_workload(6_000, 0.5, 0xCE9, 8, 1_500);
    let nfa_run = |compiled: bool| {
        let cfg = EngineConfig {
            compiled_predicates: compiled,
            ..engine_config()
        };
        let mut engine = NfaEngine::with_trivial_plan(cp.clone(), cfg);
        let t = Instant::now();
        let matches = run_to_completion(&mut engine, &gen.stream, false).match_count;
        let wall = t.elapsed().as_secs_f64() * 1e3;
        let m = engine.metrics().clone();
        (
            matches,
            m.predicate_evaluations,
            wall,
            m.event_ns.percentiles(),
        )
    };
    let tree_run = |compiled: bool| {
        let cfg = EngineConfig {
            compiled_predicates: compiled,
            ..engine_config()
        };
        let mut engine = TreeEngine::with_trivial_plan(cp.clone(), cfg);
        let t = Instant::now();
        let matches = run_to_completion(&mut engine, &gen.stream, false).match_count;
        (matches, t.elapsed().as_secs_f64() * 1e3)
    };
    // Two passes per mode, keep the faster one: halves scheduler noise
    // without making the wall comparison stateful.
    let (int_matches, int_evals, int_wall_a, int_pcts) = nfa_run(false);
    let (_, _, int_wall_b, _) = nfa_run(false);
    let (cmp_matches, cmp_evals, cmp_wall_a, cmp_pcts) = nfa_run(true);
    let (_, _, cmp_wall_b, _) = nfa_run(true);
    let (tree_int_matches, tree_int_wall) = tree_run(false);
    let (tree_cmp_matches, tree_cmp_wall) = tree_run(true);
    ScenarioReport {
        name: "compiled-pipeline",
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        counts: vec![
            ("interpreted_matches", int_matches),
            ("compiled_matches", cmp_matches),
            ("interpreted_pred_evals", int_evals),
            ("compiled_pred_evals", cmp_evals),
            ("tree_interpreted_matches", tree_int_matches),
            ("tree_compiled_matches", tree_cmp_matches),
        ],
        percentiles: vec![
            ("interpreted_event_ns", int_pcts),
            ("compiled_event_ns", cmp_pcts),
        ],
        walls: vec![
            ("nfa_interpreted_ms", int_wall_a.min(int_wall_b)),
            ("nfa_compiled_ms", cmp_wall_a.min(cmp_wall_b)),
            ("tree_interpreted_ms", tree_int_wall),
            ("tree_compiled_ms", tree_cmp_wall),
        ],
    }
}

/// Window-scaling sweep for the delta-indexed backend: the same
/// equality-correlated `SEQ(A, B, C)` workload evaluated at increasing
/// windows by the NFA, the tree engine, and the delta engine. The
/// materializing backends' peak partial-match counts grow superlinearly
/// with the window (every live `A` and joinable `A×B` pair is stored),
/// while the delta engine stores only the windowed events themselves —
/// `partial_matches_created` stays zero and `peak_buffered_events` tracks
/// the window linearly. Match counts per window are asserted equal across
/// all three backends here and gated against the baseline; wall times per
/// backend land in [`ScenarioReport::walls`].
fn delta_window_scaling() -> ScenarioReport {
    use cep_core::compile::CompiledPattern;
    use cep_core::event::{Event, TypeId};
    use cep_core::pattern::PatternBuilder;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::stream::StreamBuilder;
    use cep_core::value::Value;
    use cep_delta::DeltaEngine;
    use cep_tree::TreeEngine;

    let start = Instant::now();
    // 6 000 events, ts = i. Blocks of 4 consecutive events share one of 32
    // join keys, so types A (even i) and B (odd i) both land on every key;
    // the completing C type is rare (every 251st event), which is exactly
    // the regime where materializing engines hoard A and A×B partial
    // matches that almost never finish.
    let mut sb = StreamBuilder::new();
    for i in 0..6_000u64 {
        let tid = if i % 251 == 0 { 2 } else { (i % 2) as u32 };
        let key = ((i / 4) % 32) as i64;
        sb.push(Event::new(TypeId(tid), i, vec![Value::Int(key)]));
    }
    let stream = sb.build();

    let pattern_for = |window: u64| {
        let mut b = PatternBuilder::new(window);
        let a = b.event(TypeId(0), "a");
        let bb = b.event(TypeId(1), "b");
        let c = b.event(TypeId(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        b.predicate(Predicate::attr_cmp(bb.pos(), 0, CmpOp::Eq, c.pos(), 0));
        b.seq([a, bb, c]).unwrap()
    };

    // One row of static count/wall names per window: the canonical
    // baseline JSON needs `&'static str` keys.
    #[allow(clippy::type_complexity)]
    let rows: [(u64, [&'static str; 5], [&'static str; 2], &'static str); 3] = [
        (
            250,
            [
                "matches_w250",
                "nfa_peak_partials_w250",
                "tree_peak_partials_w250",
                "delta_peak_buffered_w250",
                "delta_index_probes_w250",
            ],
            ["nfa_w250_ms", "delta_w250_ms"],
            "delta_enum_ns_w250",
        ),
        (
            1_000,
            [
                "matches_w1000",
                "nfa_peak_partials_w1000",
                "tree_peak_partials_w1000",
                "delta_peak_buffered_w1000",
                "delta_index_probes_w1000",
            ],
            ["nfa_w1000_ms", "delta_w1000_ms"],
            "delta_enum_ns_w1000",
        ),
        (
            4_000,
            [
                "matches_w4000",
                "nfa_peak_partials_w4000",
                "tree_peak_partials_w4000",
                "delta_peak_buffered_w4000",
                "delta_index_probes_w4000",
            ],
            ["nfa_w4000_ms", "delta_w4000_ms"],
            "delta_enum_ns_w4000",
        ),
    ];
    let mut counts = Vec::new();
    let mut percentiles = Vec::new();
    let mut walls = Vec::new();
    for (window, count_keys, wall_keys, enum_key) in rows {
        let cp = CompiledPattern::compile_single(&pattern_for(window)).unwrap();
        let mut nfa = NfaEngine::with_trivial_plan(cp.clone(), engine_config());
        let t = Instant::now();
        let nfa_matches = run_to_completion(&mut nfa, &stream, false).match_count;
        let nfa_wall = t.elapsed().as_secs_f64() * 1e3;
        let mut tree = TreeEngine::with_trivial_plan(cp.clone(), engine_config());
        let tree_matches = run_to_completion(&mut tree, &stream, false).match_count;
        let mut delta = DeltaEngine::new(cp, engine_config());
        let t = Instant::now();
        let delta_matches = run_to_completion(&mut delta, &stream, false).match_count;
        let delta_wall = t.elapsed().as_secs_f64() * 1e3;
        let dm = delta.metrics();
        assert_eq!(
            nfa_matches, delta_matches,
            "delta diverged from NFA at w={window}"
        );
        assert_eq!(
            tree_matches, delta_matches,
            "delta diverged from tree at w={window}"
        );
        assert_eq!(dm.partial_matches_created, 0);
        counts.push((count_keys[0], delta_matches));
        counts.push((count_keys[1], nfa.metrics().peak_partial_matches as u64));
        counts.push((count_keys[2], tree.metrics().peak_partial_matches as u64));
        counts.push((count_keys[3], dm.peak_buffered_events as u64));
        counts.push((count_keys[4], dm.index_probes));
        percentiles.push((enum_key, dm.enumeration_ns.percentiles()));
        walls.push((wall_keys[0], nfa_wall));
        walls.push((wall_keys[1], delta_wall));
    }
    ScenarioReport {
        name: "delta-window-scaling",
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        counts,
        percentiles,
        walls,
    }
}

/// Multi-query sharing: 32 registered queries drawn from a pool of 8
/// distinct patterns over one seeded stream, evaluated by a
/// [`cep_core::registry::QueryRegistry`] (each shared fragment runs once,
/// with per-query fan-out) and by 32 independent engines. Total match
/// counts must agree exactly (asserted in the scenario and gated), and
/// the registry's predicate-evaluation count stays sub-linear in the
/// query count — with 4× duplication it is a quarter of the independent
/// engines' total (gated, plus the ratio test below). The two wall times
/// land in [`ScenarioReport::walls`] so CI logs show the speedup.
fn multi_query_sharing() -> ScenarioReport {
    use cep_core::compile::CompiledPattern;
    use cep_core::event::{Event, TypeId};
    use cep_core::pattern::{Pattern, PatternBuilder};
    use cep_core::plan::OrderPlan;
    use cep_core::predicate::{CmpOp, Predicate};
    use cep_core::registry::QueryRegistry;
    use cep_core::stream::StreamBuilder;
    use cep_core::value::Value;
    use std::sync::Arc;

    let start = Instant::now();
    // 8 000 events over 6 types with a join key cycling through 16 values
    // and a small payload attribute — every query pool member below finds
    // joins, none explodes.
    let mut sb = StreamBuilder::new();
    for i in 0..8_000u64 {
        let tid = (i % 6) as u32;
        // Mix the index so keys and payloads decorrelate from the type's
        // residue class (a plain `i/k % 16` key never aligns with it).
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let key = ((h >> 17) % 16) as i64;
        let x = ((h >> 41) % 7) as i64 - 3;
        sb.push(Event::new(
            TypeId(tid),
            i,
            vec![Value::Int(key), Value::Int(x)],
        ));
    }
    let stream = sb.build();

    // 8 distinct two-step key-join queries (distinct type pairs), each
    // registered 4 times: 32 queries, 8 fragments.
    let type_pairs: [(u32, u32); 8] = [
        (0, 3),
        (1, 4),
        (2, 5),
        (0, 4),
        (1, 5),
        (2, 3),
        (0, 5),
        (1, 3),
    ];
    let pool: Vec<Pattern> = type_pairs
        .iter()
        .map(|&(ta, tc)| {
            let mut b = PatternBuilder::new(50);
            let a = b.event(TypeId(ta), "a");
            let c = b.event(TypeId(tc), "c");
            b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
            b.predicate(Predicate::attr_cmp(a.pos(), 1, CmpOp::Lt, c.pos(), 1));
            b.seq([a, c]).unwrap()
        })
        .collect();
    let queries: Vec<Pattern> = (0..32).map(|i| pool[i % pool.len()].clone()).collect();

    let config = engine_config();
    let builder = {
        let config = config.clone();
        move |cp: &CompiledPattern,
              program: Option<Arc<cep_core::compiled::PredicateProgram>>|
              -> Result<Box<dyn Engine>, cep_core::error::CepError> {
            Ok(Box::new(NfaEngine::with_program(
                cp.clone(),
                OrderPlan::trivial(cp),
                config.clone(),
                program,
            )?))
        }
    };
    let mut registry = QueryRegistry::new(Arc::new(builder), config.clone());
    for q in &queries {
        registry.register(q).expect("registrable pool query");
    }
    let t = Instant::now();
    let result = registry.run(&stream);
    let registry_wall = t.elapsed().as_secs_f64() * 1e3;
    let rm = registry.metrics();
    let registry_matches: u64 = result.per_query.values().map(|ms| ms.len() as u64).sum();

    let t = Instant::now();
    let mut independent_matches = 0u64;
    let mut independent_evals = 0u64;
    for q in &queries {
        let cp = CompiledPattern::compile_single(q).unwrap();
        let mut engine = NfaEngine::with_trivial_plan(cp, config.clone());
        let r = run_to_completion(&mut engine, &stream, false);
        independent_matches += r.match_count;
        independent_evals += r.metrics.predicate_evaluations;
    }
    let independent_wall = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        registry_matches, independent_matches,
        "registry fan-out diverged from independent engines"
    );

    ScenarioReport {
        name: "multi-query-sharing",
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        counts: vec![
            ("registry_matches", registry_matches),
            ("independent_matches", independent_matches),
            ("distinct_fragments", registry.fragment_count() as u64),
            ("shared_subscriptions", rm.shared_fragments),
            ("registry_pred_evals", rm.predicate_evaluations),
            ("independent_pred_evals", independent_evals),
        ],
        percentiles: Vec::new(),
        walls: vec![
            ("registry_ms", registry_wall),
            ("independent_ms", independent_wall),
        ],
    }
}

/// Runs all gate scenarios at the fixed quick scale.
pub fn run_all() -> Vec<ScenarioReport> {
    vec![
        sharded_scaling(),
        adaptive_drift(),
        selectivity_drift(),
        cross_partition(),
        compiled_pipeline(),
        delta_window_scaling(),
        multi_query_sharing(),
    ]
}

/// Canonical counts-only JSON — the committed baseline format. Stable key
/// order, no whitespace variation: textual equality means count equality.
pub fn counts_json(reports: &[ScenarioReport]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&format!("  \"{}\": {{", r.name));
        for (j, (k, v)) in r.counts.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str(if i + 1 < reports.len() { "},\n" } else { "}\n" });
    }
    s.push_str("}\n");
    s
}

/// Full report JSON (counts + wall times + latency percentiles) written
/// to `BENCH_PR10.json`. Percentiles live here and in the logs only — the
/// diffed baseline format ([`counts_json`]) never includes them.
pub fn full_json(reports: &[ScenarioReport]) -> String {
    let mut s = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"counts\": {{",
            r.name, r.wall_ms
        ));
        for (j, (k, v)) in r.counts.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push_str("}, \"walls_ms\": {");
        for (j, (k, w)) in r.walls.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {w:.3}"));
        }
        s.push_str("}, \"percentiles_ns\": {");
        for (j, (k, [p50, p95, p99])) in r.percentiles.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{k}\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}"
            ));
        }
        s.push_str(if i + 1 < reports.len() {
            "}},\n"
        } else {
            "}}\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Drives the gate end to end: run the scenarios, write the full report to
/// `out_path`, and — unless `write_baseline` — compare the canonical
/// counts against the committed baseline at `baseline_path`, returning
/// `Err` (for a non-zero exit) on any divergence. With `write_baseline`
/// the baseline file is (re)generated instead of checked.
pub fn run(
    out_path: &str,
    baseline_path: &str,
    write_baseline: bool,
    log: &mut dyn Write,
) -> Result<(), String> {
    let reports = run_all();
    for r in &reports {
        writeln!(log, "{}: {:.0} ms, counts:", r.name, r.wall_ms).ok();
        for (k, v) in &r.counts {
            writeln!(log, "    {k} = {v}").ok();
        }
        for (k, w) in &r.walls {
            writeln!(log, "    {k} = {w:.1} ms").ok();
        }
        if !r.percentiles.is_empty() {
            writeln!(
                log,
                "  latency percentiles (ns): {:<26} {:>10} {:>10} {:>10}",
                "", "p50", "p95", "p99"
            )
            .ok();
            for (k, [p50, p95, p99]) in &r.percentiles {
                writeln!(log, "    {k:<26} {p50:>10} {p95:>10} {p99:>10}").ok();
            }
        }
    }
    std::fs::write(out_path, full_json(&reports))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(log, "wrote {out_path}").ok();
    let current = counts_json(&reports);
    if write_baseline {
        std::fs::write(baseline_path, &current)
            .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
        writeln!(log, "wrote baseline {baseline_path}").ok();
        return Ok(());
    }
    let committed = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    if committed == current {
        writeln!(log, "bench-smoke counts match the committed baseline").ok();
        Ok(())
    } else {
        Err(format!(
            "bench-smoke output counts diverged from the committed baseline \
             {baseline_path}.\n--- committed ---\n{committed}\n--- current ---\n{current}\
             \nIf the change is intentional, regenerate with \
             `experiments bench-smoke --write-baseline`."
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_json_is_canonical() {
        let reports = vec![
            ScenarioReport {
                name: "a",
                wall_ms: 1.0,
                counts: vec![("x", 1), ("y", 2)],
                percentiles: vec![("lat", [10, 20, 30])],
                walls: vec![("fast", 0.5)],
            },
            ScenarioReport {
                name: "b",
                wall_ms: 2.0,
                counts: vec![("z", 3)],
                percentiles: Vec::new(),
                walls: Vec::new(),
            },
        ];
        // Percentiles and sub-run walls are timing-dependent and MUST stay
        // out of the canonical counts the committed baseline is diffed
        // against.
        assert_eq!(
            counts_json(&reports),
            "{\n  \"a\": {\"x\": 1, \"y\": 2},\n  \"b\": {\"z\": 3}\n}\n"
        );
        let full = full_json(&reports);
        assert!(full.contains("\"name\": \"a\""));
        assert!(full.contains("\"wall_ms\""));
        assert!(full.contains("\"z\": 3"));
        assert!(full.contains("\"fast\": 0.500"));
        assert!(full.contains("\"lat\": {\"p50\": 10, \"p95\": 20, \"p99\": 30}"));
    }

    /// The gate's core premise: identical seeds produce identical counts.
    #[test]
    fn scenario_counts_are_deterministic() {
        let a = cross_partition();
        let b = cross_partition();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts[0].0, "serial");
        // Replicate-join exactness inside the scenario itself.
        let serial = a.counts[0].1;
        assert!(a
            .counts
            .iter()
            .filter(|(k, _)| k.starts_with("shards"))
            .all(|&(_, v)| v == serial));
    }

    /// The compiled pipeline must be a pure optimization: identical match
    /// counts on both engine families, strictly fewer predicate
    /// evaluations (fused filters + eager pruning), and a wall time that
    /// does not regress past noise.
    #[test]
    fn compiled_pipeline_is_equal_output_and_not_slower() {
        let r = compiled_pipeline();
        let count = |key: &str| {
            r.counts
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(count("interpreted_matches"), count("compiled_matches"));
        assert_eq!(
            count("tree_interpreted_matches"),
            count("tree_compiled_matches")
        );
        assert!(
            count("compiled_pred_evals") <= count("interpreted_pred_evals"),
            "fused evaluators should never evaluate more than the interpreter"
        );
        let wall = |key: &str| {
            r.walls
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, w)| w)
                .unwrap()
        };
        // Generous noise allowance: the gate is "not slower", the precise
        // speedup is criterion's job (benches/ablation.rs).
        assert!(
            wall("nfa_compiled_ms") <= wall("nfa_interpreted_ms") * 1.5,
            "compiled path regressed: {:.1} ms vs {:.1} ms interpreted",
            wall("nfa_compiled_ms"),
            wall("nfa_interpreted_ms"),
        );
    }

    /// Multi-query sharing's headline property at bench scale: the
    /// registry emits exactly what 32 independent engines emit while
    /// doing (at most half; in fact a quarter, with 4× duplication) of
    /// their predicate work.
    #[test]
    fn multi_query_sharing_is_sublinear() {
        let r = multi_query_sharing();
        let count = |key: &str| {
            r.counts
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(
            count("registry_matches") > 0,
            "fixture must produce matches"
        );
        assert_eq!(count("registry_matches"), count("independent_matches"));
        assert_eq!(count("distinct_fragments"), 8);
        assert_eq!(count("shared_subscriptions"), 24);
        assert!(
            count("registry_pred_evals") * 2 <= count("independent_pred_evals"),
            "shared fragments must make registry predicate work sub-linear \
             ({} vs {} independent)",
            count("registry_pred_evals"),
            count("independent_pred_evals"),
        );
    }

    /// The delta backend's headline property at bench scale: as the window
    /// grows 16×, the materializing backends' peak partial-match counts
    /// blow up ≥10×, while the delta engine stores no partial matches and
    /// its peak buffered-event count grows no faster than the window.
    #[test]
    fn delta_window_scaling_blows_up_materializing_backends_only() {
        let r = delta_window_scaling();
        let count = |key: &str| {
            r.counts
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .unwrap()
        };
        // Exact output agreement per window is asserted inside the
        // scenario; re-check the counts are present and non-trivial.
        assert!(count("matches_w250") > 0, "fixture must produce matches");
        assert!(count("matches_w4000") > count("matches_w250"));
        let nfa_ratio =
            count("nfa_peak_partials_w4000") as f64 / count("nfa_peak_partials_w250").max(1) as f64;
        let tree_ratio = count("tree_peak_partials_w4000") as f64
            / count("tree_peak_partials_w250").max(1) as f64;
        let delta_ratio = count("delta_peak_buffered_w4000") as f64
            / count("delta_peak_buffered_w250").max(1) as f64;
        assert!(
            nfa_ratio >= 10.0,
            "NFA partial matches should blow up ≥10× over a 16× window (got {nfa_ratio:.1}×)"
        );
        assert!(
            tree_ratio >= 10.0,
            "tree partial matches should blow up ≥10× over a 16× window (got {tree_ratio:.1}×)"
        );
        assert!(
            delta_ratio <= 16.0 * 1.25,
            "delta buffered events must grow at most linearly with the window \
             (got {delta_ratio:.1}× over a 16× window)"
        );
        assert!(
            delta_ratio < nfa_ratio / 2.0,
            "delta storage ({delta_ratio:.1}×) should scale far below NFA partials ({nfa_ratio:.1}×)"
        );
    }
}
