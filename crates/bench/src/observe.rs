//! The `experiments observe` subcommand and its CI sibling `check-obs`.
//!
//! `observe` runs two traced workloads end to end — a drifting-rate
//! adaptive run (every replan decision and replay window traced) and a
//! cross-partition sharded run (sampled routing decisions, per-batch
//! queue depths) — plus the static analyzer over a seeded-defect demo
//! query, then dumps:
//!
//! * the **decision timeline**: plan-swap verdicts with their cost
//!   arithmetic, replay windows, and shard-batch/queue-depth summaries,
//!   straight from the in-memory ring;
//! * a **latency percentile table** (p50/p95/p99) from the log₂
//!   histograms the engines fill as they run;
//! * a [`MetricsRegistry`] snapshot in both Prometheus text exposition
//!   and JSON, self-validated before it is written;
//! * the raw JSONL trace, one canonical line per record.
//!
//! `check-obs` is the read-back half CI runs against those artifacts: it
//! re-validates the Prometheus text, parses every trace line back through
//! [`TraceRecord::from_json`], asserts the canonical re-encoding is
//! byte-identical, and requires at least one record of each kind the
//! workloads are guaranteed to produce.

use crate::env::{cross_key_stock_workload, drifting_stock_workload};
use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner};
use cep_core::compiled::PlanCache;
use cep_core::engine::{run_traced, Engine, EngineConfig};
use cep_core::partition::QueryPartitioner;
use cep_core::stats::MeasuredStats;
use cep_nfa::NfaEngine;
use cep_obs::{
    validate_prometheus, JsonlSink, LatencyHistogram, MetricsRegistry, RingSink, TraceRecord,
    Tracer,
};
use cep_optimizer::{OrderAlgorithm, Planner};
use cep_shard::{RoutingPolicy, ShardedRuntime};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A demo query carrying a deliberate defect (a transitively redundant
/// predicate, `A006`), so the diagnostic path of the trace always has
/// something to emit.
const DEMO_QUERY: &str = "TYPE Tick(v int)\n\
                          PATTERN SEQ(Tick a, Tick b, Tick c)\n\
                          WHERE (a.v < b.v AND b.v < c.v AND a.v < c.v)\n\
                          WITHIN 5 s\n";

fn engine_config() -> EngineConfig {
    EngineConfig {
        max_kleene_events: 6,
        ..Default::default()
    }
}

/// Runs the traced workloads and writes the three artifacts. `prom_path`
/// gets the Prometheus text exposition, `json_path` the same snapshot as
/// JSON, `trace_path` the JSONL trace.
pub fn run(
    prom_path: &str,
    json_path: &str,
    trace_path: &str,
    out: &mut dyn Write,
) -> Result<(), String> {
    let ring = Arc::new(RingSink::new(1 << 16));
    let jsonl =
        JsonlSink::create(trace_path).map_err(|e| format!("cannot create {trace_path}: {e}"))?;
    let tracer = Tracer::new(vec![Box::new(ring.clone()), Box::new(jsonl)]);
    let mut reg = MetricsRegistry::new();
    let mut table: Vec<(String, LatencyHistogram)> = Vec::new();

    writeln!(out, "# observe: traced adaptive + sharded runs").ok();

    // --- Static analysis: diagnostics become trace records too. ---------
    let (_, report) = cep_analyze::analyze_query_file(DEMO_QUERY)
        .map_err(|e| format!("demo query fails to analyze: {e}"))?;
    for d in report.iter() {
        tracer.emit_with(|| TraceRecord::DiagnosticEmitted {
            code: d.code.as_str().to_string(),
            severity: d.severity.to_string(),
            message: d.message.clone(),
        });
    }
    writeln!(
        out,
        "\nanalyzer diagnostics traced: {}",
        report.iter().count()
    )
    .ok();

    // --- Adaptive run: every replan decision and replay window traced. --
    let window_ms = 3_000;
    let (gen, cp, sels) = drifting_stock_workload(4_000, 12_000, 0xCE9, window_ms);
    // The replanner compiles predicate programs through a traced plan
    // cache: the first build records a miss, every post-swap rebuild a hit,
    // all visible as `plan_cache_lookup` records in the timeline below.
    let plan_cache = Arc::new(Mutex::new(PlanCache::new(64).with_tracer(tracer.clone())));
    let replanner = PlanReplanner::new(
        vec![(cp, sels)],
        &gen.initial_stats(),
        Planner::default(),
        PlanKind::Order(OrderAlgorithm::DpLd),
        engine_config(),
    )
    .map_err(|e| format!("replanner setup failed: {e}"))?
    .with_plan_cache(plan_cache.clone());
    let mut adaptive = AdaptiveEngine::new(
        replanner,
        window_ms,
        AdaptiveConfig {
            horizon_ms: window_ms,
            drift_threshold: 0.5,
            check_every: 32,
            cooldown_events: 128,
            ..AdaptiveConfig::default()
        },
    )
    .with_tracer(tracer.clone());
    let r = run_traced(&mut adaptive, &gen.stream, false, &tracer);
    let m = adaptive.metrics();
    writeln!(
        out,
        "\nadaptive run: {} events, {} matches, {} plan swaps, \
         plan cache {}/{} hits/misses",
        m.events_processed,
        r.match_count,
        adaptive.swaps(),
        m.plan_cache_hits,
        m.plan_cache_misses,
    )
    .ok();
    m.export(&mut reg, &[("run", "adaptive")]);
    table.push(("adaptive event_ns".into(), m.event_ns.clone()));
    table.push((
        "adaptive match_latency_ns".into(),
        m.match_latency_ns.clone(),
    ));
    table.push(("adaptive replay_ns".into(), m.replay_ns.clone()));

    // --- Sharded run: routing + queue depths traced. ---------------------
    let (gen, cp) = cross_key_stock_workload(8_000, 0.5, 0xC0A, 32, 2_000);
    let stats = MeasuredStats::measure(&gen.stream);
    let spec = QueryPartitioner::analyze_measured(std::slice::from_ref(&cp), &stats)
        .map_err(|e| format!("cross-key query fails to partition: {e}"))?;
    let factory = move || {
        Box::new(NfaEngine::with_trivial_plan(cp.clone(), engine_config())) as Box<dyn Engine>
    };
    let sharded = ShardedRuntime::with_shards(4)
        .with_tracer(tracer.clone())
        .run(
            &factory,
            &gen.stream,
            RoutingPolicy::ReplicateJoin(Arc::new(spec)),
            false,
        );
    writeln!(
        out,
        "sharded run: {} events, {} matches, imbalance ratio {:.3}",
        sharded.metrics.events_processed,
        sharded.match_count,
        sharded.imbalance_ratio()
    )
    .ok();
    sharded.export(&mut reg, &[("run", "sharded")]);
    table.push(("sharded event_ns".into(), sharded.metrics.event_ns.clone()));
    table.push((
        "sharded match_latency_ns".into(),
        sharded.metrics.match_latency_ns.clone(),
    ));

    tracer.flush();

    // --- Decision timeline from the ring. --------------------------------
    writeln!(out, "\n## decision timeline\n").ok();
    let records = ring.snapshot();
    let mut kind_counts: Vec<(&'static str, u64)> = Vec::new();
    let mut max_queue_depth = 0u64;
    for rec in &records {
        match kind_counts.iter_mut().find(|(k, _)| *k == rec.kind()) {
            Some((_, n)) => *n += 1,
            None => kind_counts.push((rec.kind(), 1)),
        }
        match rec {
            TraceRecord::PlanSwapDecision {
                at_event,
                verdict,
                current_cost,
                candidate_cost,
                replay_fraction,
                amortize_windows,
                retained_events,
            } => {
                writeln!(
                    out,
                    "event {at_event:>7}  {verdict:<10}  cost {current_cost:.1} -> \
                     {candidate_cost:.1}  replay_fraction {replay_fraction:.3}  \
                     amortize_windows {amortize_windows}  retained {retained_events}"
                )
                .ok();
            }
            TraceRecord::ReplayWindow {
                at_event,
                replayed_events,
                replay_ns,
                suppressed_matches,
            } => {
                writeln!(
                    out,
                    "event {at_event:>7}  replay      {replayed_events} events in \
                     {replay_ns} ns, {suppressed_matches} duplicate matches suppressed"
                )
                .ok();
            }
            TraceRecord::ShardBatch { queue_depth, .. } => {
                max_queue_depth = max_queue_depth.max(*queue_depth);
            }
            TraceRecord::PlanCacheLookup {
                signature,
                hit,
                size,
            } => {
                writeln!(
                    out,
                    "plan cache     {}  signature {signature:#018x}  {size} cached",
                    if *hit { "hit " } else { "miss" },
                )
                .ok();
            }
            TraceRecord::DiagnosticEmitted {
                code,
                severity,
                message,
            } => {
                writeln!(out, "diagnostic     {code} ({severity}): {message}").ok();
            }
            _ => {}
        }
    }
    writeln!(out, "\ntrace records by kind:").ok();
    for (k, n) in &kind_counts {
        writeln!(out, "    {k:<20} {n}").ok();
    }
    writeln!(out, "max observed shard queue depth: {max_queue_depth}").ok();

    // --- Percentile table. ------------------------------------------------
    writeln!(out, "\n## latency percentiles (ns)\n").ok();
    writeln!(
        out,
        "{:<26} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50", "p95", "p99", "mean"
    )
    .ok();
    for (label, hist) in &table {
        let [p50, p95, p99] = hist.percentiles();
        writeln!(
            out,
            "{:<26} {:>9} {:>12} {:>12} {:>12} {:>12.0}",
            label,
            hist.count(),
            p50,
            p95,
            p99,
            hist.mean()
        )
        .ok();
    }

    // --- Registry export, self-validated before writing. ------------------
    let prom = reg.render_prometheus();
    validate_prometheus(&prom).map_err(|e| format!("registry rendered invalid exposition: {e}"))?;
    std::fs::write(prom_path, &prom).map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    let json = reg.render_json();
    cep_obs::json::parse(&json).map_err(|e| format!("registry rendered invalid JSON: {e}"))?;
    std::fs::write(json_path, &json).map_err(|e| format!("cannot write {json_path}: {e}"))?;
    writeln!(
        out,
        "\nwrote {prom_path} ({} families), {json_path}, {trace_path} ({} records)",
        reg.len(),
        records.len()
    )
    .ok();
    Ok(())
}

/// The kinds `observe`'s workloads always produce at least once; missing
/// ones mean an instrumentation site regressed silently.
const REQUIRED_KINDS: &[&str] = &[
    "plan_swap_decision",
    "plan_cache_lookup",
    "replay_window",
    "shard_route",
    "shard_batch",
    "match_emitted",
    "diagnostic",
];

/// The `check-obs` gate: validates a Prometheus artifact and round-trips a
/// JSONL trace produced by [`run`].
pub fn check(prom_path: &str, trace_path: &str, out: &mut dyn Write) -> Result<(), String> {
    let prom =
        std::fs::read_to_string(prom_path).map_err(|e| format!("cannot read {prom_path}: {e}"))?;
    validate_prometheus(&prom).map_err(|e| format!("{prom_path}: {e}"))?;
    writeln!(out, "{prom_path}: valid Prometheus exposition").ok();

    let trace = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let mut kind_counts: Vec<(&'static str, u64)> = Vec::new();
    for (i, line) in trace.lines().enumerate() {
        let rec =
            TraceRecord::from_json(line).map_err(|e| format!("{trace_path}:{}: {e}", i + 1))?;
        if rec.to_json() != line {
            return Err(format!(
                "{trace_path}:{}: line is not canonical JSON\n  read:  {line}\n  canon: {}",
                i + 1,
                rec.to_json()
            ));
        }
        match kind_counts.iter_mut().find(|(k, _)| *k == rec.kind()) {
            Some((_, n)) => *n += 1,
            None => kind_counts.push((rec.kind(), 1)),
        }
    }
    let total: u64 = kind_counts.iter().map(|(_, n)| n).sum();
    writeln!(
        out,
        "{trace_path}: {total} records round-trip byte-identically"
    )
    .ok();
    for required in REQUIRED_KINDS {
        let n = kind_counts
            .iter()
            .find(|(k, _)| k == required)
            .map_or(0, |(_, n)| *n);
        if n == 0 {
            return Err(format!(
                "{trace_path}: no {required:?} record — an instrumentation site went silent"
            ));
        }
        writeln!(out, "    {required:<20} {n}").ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over temp files: observe writes artifacts check accepts.
    #[test]
    fn observe_then_check_round_trips() {
        let dir = std::env::temp_dir().join("cep_observe_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let (prom, json, trace) = (p("obs.prom"), p("obs.json"), p("obs_trace.jsonl"));
        let mut log = Vec::new();
        run(&prom, &json, &trace, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(
            text.contains("plan swaps"),
            "missing adaptive summary:\n{text}"
        );
        assert!(text.contains("p99"), "missing percentile table:\n{text}");
        let mut log = Vec::new();
        check(&prom, &trace, &mut log).unwrap();
        let text = String::from_utf8(log).unwrap();
        assert!(text.contains("round-trip byte-identically"));
        assert!(text.contains("plan_swap_decision"));
        assert!(text.contains("plan_cache_lookup"));
    }

    #[test]
    fn check_rejects_corrupt_artifacts() {
        let dir = std::env::temp_dir().join("cep_observe_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("bad.prom");
        let trace = dir.join("bad.jsonl");
        std::fs::write(&prom, "foo 1\n# TYPE foo counter\n").unwrap();
        std::fs::write(&trace, "{\"type\":\"match_emitted\"}\n").unwrap();
        let mut log = Vec::new();
        assert!(check(prom.to_str().unwrap(), trace.to_str().unwrap(), &mut log).is_err());
    }
}
