//! Plan + execute machinery shared by all figures.

use crate::env::ExperimentEnv;
use cep_core::compile::CompiledPattern;
use cep_core::engine::{run_to_completion, Engine, EngineConfig, MultiEngine};
use cep_core::error::CepError;
use cep_core::pattern::Pattern;
use cep_core::plan::{OrderPlan, TreePlan};
use cep_core::stats::PatternStats;
use cep_nfa::NfaEngine;
use cep_optimizer::{OrderAlgorithm, Planner, PlannerConfig, TreeAlgorithm};
use cep_streamgen::{analytic_measured_stats, analytic_selectivities};
use cep_tree::TreeEngine;
use std::time::Instant;

/// Which evaluation model / algorithm produced a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Order-based (lazy NFA) evaluation.
    Order(OrderAlgorithm),
    /// Tree-based evaluation.
    Tree(TreeAlgorithm),
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algo::Order(a) => write!(f, "{a}"),
            Algo::Tree(a) => write!(f, "{a}"),
        }
    }
}

/// A branch plan (one per DNF conjunct).
pub enum BranchPlan {
    /// Order plan for the NFA engine.
    Order(OrderPlan),
    /// Tree plan for the tree engine.
    Tree(TreePlan),
}

/// A fully planned pattern, ready to execute.
pub struct PlannedPattern {
    /// `(compiled branch, its statistics, its plan)`.
    pub branches: Vec<(CompiledPattern, PatternStats, BranchPlan)>,
    /// Wall time spent generating the plans (the paper's Figure 17(b)).
    pub plan_time_s: f64,
    /// Summed plan cost across branches, under the planner's cost model.
    pub plan_cost: f64,
    /// Pattern window (for multi-engine dedup).
    pub window: u64,
}

/// Plans every DNF branch of `pattern` with one algorithm.
pub fn plan_pattern(
    pattern: &Pattern,
    env: &ExperimentEnv,
    algo: Algo,
    alpha: f64,
) -> Result<PlannedPattern, CepError> {
    let branches = CompiledPattern::compile(pattern)?;
    let measured = analytic_measured_stats(&env.gen);
    let planner = Planner::new(PlannerConfig {
        alpha,
        ..Default::default()
    });
    let mut planned = Vec::with_capacity(branches.len());
    let mut plan_cost = 0.0;
    let start = Instant::now();
    for cp in branches {
        let sels = analytic_selectivities(&cp, &env.gen);
        let stats = planner.stats_for(&cp, &measured, &sels)?;
        let cm = planner.cost_model(&cp);
        let plan = match algo {
            Algo::Order(a) => {
                let p = planner.plan_order(&cp, &stats, a)?;
                plan_cost += cm.order_plan_cost(&stats, &p);
                BranchPlan::Order(p)
            }
            Algo::Tree(a) => {
                let p = planner.plan_tree(&cp, &stats, a)?;
                plan_cost += cm.tree_plan_cost(&stats, &p);
                BranchPlan::Tree(p)
            }
        };
        planned.push((cp, stats, plan));
    }
    let plan_time_s = start.elapsed().as_secs_f64();
    Ok(PlannedPattern {
        branches: planned,
        plan_time_s,
        plan_cost,
        window: pattern.window,
    })
}

/// Execution measurements for one (pattern, algorithm) pair.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Events per second of engine wall time.
    pub throughput_eps: f64,
    /// Peak estimated memory (bytes) of partial matches + buffers.
    pub peak_memory_bytes: usize,
    /// Mean detection latency (ms of processing after the completing
    /// event's arrival).
    pub avg_latency_ms: f64,
    /// Matches detected.
    pub matches: u64,
    /// Plan cost (from planning).
    pub plan_cost: f64,
    /// Plan generation time in seconds.
    pub plan_time_s: f64,
}

/// Builds the engine(s) for a planned pattern and drives the stream
/// through them.
pub fn execute(
    planned: &PlannedPattern,
    env: &ExperimentEnv,
    cfg: &EngineConfig,
) -> Result<RunOutcome, CepError> {
    let mut engines: Vec<Box<dyn Engine>> = Vec::with_capacity(planned.branches.len());
    for (cp, _, plan) in &planned.branches {
        let e: Box<dyn Engine> = match plan {
            BranchPlan::Order(p) => Box::new(NfaEngine::new(cp.clone(), p.clone(), cfg.clone())?),
            BranchPlan::Tree(p) => Box::new(TreeEngine::new(cp.clone(), p.clone(), cfg.clone())?),
        };
        engines.push(e);
    }
    let result = if engines.len() == 1 {
        let mut engine = engines.pop().expect("one engine");
        run_to_completion(engine.as_mut(), env.stream(), false)
    } else {
        let mut multi = MultiEngine::new(engines, planned.window);
        run_to_completion(&mut multi, env.stream(), false)
    };
    Ok(RunOutcome {
        throughput_eps: result.metrics.throughput_eps(),
        peak_memory_bytes: result.metrics.peak_memory_bytes,
        avg_latency_ms: result.metrics.avg_latency_ms(),
        matches: result.match_count,
        plan_cost: planned.plan_cost,
        plan_time_s: planned.plan_time_s,
    })
}

/// Convenience: plan then execute.
pub fn plan_and_run(
    pattern: &Pattern,
    env: &ExperimentEnv,
    algo: Algo,
    alpha: f64,
    cfg: &EngineConfig,
) -> Result<RunOutcome, CepError> {
    let planned = plan_pattern(pattern, env, algo, alpha)?;
    execute(&planned, env, cfg)
}

/// Geometric-mean helper for throughput aggregation (robust to the heavy
/// right tail of per-pattern throughputs).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Scale;
    use cep_streamgen::PatternSetKind;

    fn tiny_env() -> ExperimentEnv {
        let mut s = Scale::quick();
        s.duration_ms = 20_000;
        s.per_size = 1;
        s.sizes = 3..=4;
        ExperimentEnv::setup(s)
    }

    #[test]
    fn plan_and_run_all_algorithms_on_a_sequence() {
        let env = tiny_env();
        let set = env.pattern_set(PatternSetKind::Sequence);
        let cfg = EngineConfig::default();
        let mut match_counts = Vec::new();
        for algo in [
            Algo::Order(OrderAlgorithm::Trivial),
            Algo::Order(OrderAlgorithm::EFreq),
            Algo::Order(OrderAlgorithm::Greedy),
            Algo::Order(OrderAlgorithm::DpLd),
            Algo::Tree(TreeAlgorithm::ZStream),
            Algo::Tree(TreeAlgorithm::DpB),
        ] {
            let out = plan_and_run(&set[0].pattern, &env, algo, 0.0, &cfg).unwrap();
            assert!(out.throughput_eps > 0.0, "{algo}: no throughput");
            match_counts.push(out.matches);
        }
        // Every algorithm must detect the same matches.
        assert!(
            match_counts.windows(2).all(|w| w[0] == w[1]),
            "{match_counts:?}"
        );
    }

    #[test]
    fn disjunction_uses_multi_engine() {
        let env = tiny_env();
        let set = env.pattern_set(PatternSetKind::Disjunction);
        let planned = plan_pattern(
            &set[0].pattern,
            &env,
            Algo::Order(OrderAlgorithm::Greedy),
            0.0,
        )
        .unwrap();
        assert_eq!(planned.branches.len(), 3);
        let out = execute(&planned, &env, &EngineConfig::default()).unwrap();
        assert!(out.throughput_eps > 0.0);
    }

    #[test]
    fn aggregation_helpers() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
