//! Experiment drivers regenerating every figure of Section 7.3.
//!
//! Each function prints the same rows/series as the corresponding paper
//! figure (absolute numbers differ — synthetic stream, different hardware —
//! but the comparative shape is the deliverable; see `EXPERIMENTS.md`).

use crate::env::ExperimentEnv;
use crate::report::{bytes, si, Table};
use crate::runner::{geometric_mean, mean, plan_and_run, plan_pattern, Algo, RunOutcome};
use cep_core::engine::EngineConfig;
use cep_core::selection::SelectionStrategy;
use cep_optimizer::{OrderAlgorithm, TreeAlgorithm};
use cep_streamgen::{generate_pattern, PatternSetKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// The paper's order-based algorithm set (Section 7.1).
pub fn order_algos() -> Vec<Algo> {
    OrderAlgorithm::paper_set()
        .into_iter()
        .map(Algo::Order)
        .collect()
}

/// The paper's tree-based algorithm set (Section 7.1).
pub fn tree_algos() -> Vec<Algo> {
    TreeAlgorithm::paper_set()
        .into_iter()
        .map(Algo::Tree)
        .collect()
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        // Power-set semantics is exponential by design; the cap bounds the
        // per-accumulator set size identically for every plan under test.
        max_kleene_events: 6,
        ..Default::default()
    }
}

/// Runs one pattern set under one algorithm; returns `(size, outcome)` per
/// pattern (failed plans — e.g. DP beyond its size cap — are skipped).
fn run_set(
    env: &ExperimentEnv,
    kind: PatternSetKind,
    algo: Algo,
    alpha: f64,
) -> Vec<(usize, RunOutcome)> {
    let cfg = engine_config();
    env.pattern_set(kind)
        .iter()
        .filter_map(|gp| {
            plan_and_run(&gp.pattern, env, algo, alpha, &cfg)
                .ok()
                .map(|o| (gp.size, o))
        })
        .collect()
}

/// Figures 4 and 5: mean throughput and peak memory per pattern category,
/// for the order-based and tree-based algorithm families.
pub fn pattern_types(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "== Figures 4 & 5: throughput and memory by pattern type =="
    )?;
    writeln!(
        out,
        "(streams: {} events; {} patterns per category)",
        env.stream().len(),
        env.pattern_set(PatternSetKind::Sequence).len()
    )?;
    let kinds = PatternSetKind::all();
    for (family, algos) in [
        ("order-based (Fig 4a/5a)", order_algos()),
        ("tree-based (Fig 4b/5b)", tree_algos()),
    ] {
        let mut header = vec!["algorithm".to_string()];
        header.extend(kinds.iter().map(|k| k.to_string()));
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut tput = Table::new(&hdr);
        let mut mem = Table::new(&hdr);
        for &algo in &algos {
            let mut trow = vec![algo.to_string()];
            let mut mrow = vec![algo.to_string()];
            for &kind in &kinds {
                let results = run_set(env, kind, algo, 0.0);
                let th: Vec<f64> = results.iter().map(|(_, o)| o.throughput_eps).collect();
                let mb: Vec<f64> = results
                    .iter()
                    .map(|(_, o)| o.peak_memory_bytes as f64)
                    .collect();
                trow.push(si(geometric_mean(&th)));
                mrow.push(bytes(mean(&mb) as usize));
            }
            tput.row(trow);
            mem.row(mrow);
        }
        writeln!(
            out,
            "\n-- {family}: throughput (events/s, higher is better)"
        )?;
        write!(out, "{}", tput.render())?;
        writeln!(out, "\n-- {family}: peak memory (lower is better)")?;
        write!(out, "{}", mem.render())?;
    }
    Ok(())
}

/// Figures 6–15: throughput and memory as a function of pattern size, for
/// one category (sequence -> Fig 6/7, negation -> 8/9, conjunction -> 10/11,
/// kleene -> 12/13, disjunction -> 14/15).
pub fn by_size(
    env: &ExperimentEnv,
    kind: PatternSetKind,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let fig = match kind {
        PatternSetKind::Sequence => "6/7",
        PatternSetKind::Negation => "8/9",
        PatternSetKind::Conjunction => "10/11",
        PatternSetKind::Kleene => "12/13",
        PatternSetKind::Disjunction => "14/15",
    };
    writeln!(out, "== Figures {fig}: {kind} patterns by size ==")?;
    let sizes: Vec<usize> = env.scale.sizes.clone().collect();
    for (family, algos) in [("order-based", order_algos()), ("tree-based", tree_algos())] {
        let mut header = vec!["algorithm".to_string()];
        header.extend(sizes.iter().map(|s| format!("n={s}")));
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut tput = Table::new(&hdr);
        let mut mem = Table::new(&hdr);
        for &algo in &algos {
            let results = run_set(env, kind, algo, 0.0);
            let mut trow = vec![algo.to_string()];
            let mut mrow = vec![algo.to_string()];
            for &s in &sizes {
                let th: Vec<f64> = results
                    .iter()
                    .filter(|(sz, _)| *sz == s)
                    .map(|(_, o)| o.throughput_eps)
                    .collect();
                let mb: Vec<f64> = results
                    .iter()
                    .filter(|(sz, _)| *sz == s)
                    .map(|(_, o)| o.peak_memory_bytes as f64)
                    .collect();
                trow.push(si(geometric_mean(&th)));
                mrow.push(bytes(mean(&mb) as usize));
            }
            tput.row(trow);
            mem.row(mrow);
        }
        writeln!(out, "\n-- {family}: throughput (events/s)")?;
        write!(out, "{}", tput.render())?;
        writeln!(out, "\n-- {family}: peak memory")?;
        write!(out, "{}", mem.render())?;
    }
    Ok(())
}

/// Figure 16: throughput and memory as functions of the plan cost computed
/// by `Cost_ord` / `Cost_tree`, over a mixed bag of plans; reports the
/// fitted relationships (throughput ≈ k / cost^c, memory ≈ linear).
pub fn cost_validation(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "== Figure 16: metrics vs plan cost ==")?;
    let kinds = [
        PatternSetKind::Sequence,
        PatternSetKind::Conjunction,
        PatternSetKind::Negation,
    ];
    for (family, algos) in [
        (
            "order-based plans",
            vec![
                Algo::Order(OrderAlgorithm::Trivial),
                Algo::Order(OrderAlgorithm::EFreq),
                Algo::Order(OrderAlgorithm::Greedy),
                Algo::Order(OrderAlgorithm::DpLd),
            ],
        ),
        (
            "tree-based plans",
            vec![
                Algo::Tree(TreeAlgorithm::ZStream),
                Algo::Tree(TreeAlgorithm::ZStreamOrd),
                Algo::Tree(TreeAlgorithm::DpB),
            ],
        ),
    ] {
        let mut samples: Vec<(f64, f64, f64)> = Vec::new(); // (cost, tput, mem)
        for &kind in &kinds {
            for &algo in &algos {
                for (_, o) in run_set(env, kind, algo, 0.0) {
                    if o.plan_cost > 0.0 && o.throughput_eps > 0.0 {
                        samples.push((o.plan_cost, o.throughput_eps, o.peak_memory_bytes as f64));
                    }
                }
            }
        }
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let shown = samples.len().min(20);
        let stride = (samples.len() / shown.max(1)).max(1);
        let mut t = Table::new(&["plan cost", "throughput (e/s)", "peak memory"]);
        for s in samples.iter().step_by(stride) {
            t.row(vec![si(s.0), si(s.1), bytes(s.2 as usize)]);
        }
        // Fit log(tput) = a - c*log(cost).
        let logs: Vec<(f64, f64)> = samples.iter().map(|(c, t, _)| (c.ln(), t.ln())).collect();
        let c_exp = -linear_slope(&logs);
        // Memory-vs-cost monotonicity (rank correlation).
        let mem_corr = rank_correlation(
            &samples.iter().map(|s| s.0).collect::<Vec<_>>(),
            &samples.iter().map(|s| s.2).collect::<Vec<_>>(),
        );
        writeln!(
            out,
            "\n-- {family} ({} plans, subsampled below)",
            samples.len()
        )?;
        write!(out, "{}", t.render())?;
        writeln!(
            out,
            "fit: throughput ~ 1/cost^c with c = {c_exp:.2}  (paper: c >= 1)"
        )?;
        writeln!(
            out,
            "memory-vs-cost Spearman correlation = {mem_corr:.2}  (paper: ~linear, positive)"
        )?;
    }
    Ok(())
}

fn linear_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let var: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
        let mut r = vec![0.0; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let pts: Vec<(f64, f64)> = ra.into_iter().zip(rb).collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let va: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vb: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Figure 17: (a) normalized plan cost vs EFREQ and (b) plan-generation
/// time, for large sequence patterns (planning only, no execution).
pub fn large_patterns(
    env: &ExperimentEnv,
    max_size: usize,
    per_size: usize,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    writeln!(
        out,
        "== Figure 17: large-pattern plan quality and planning time =="
    )?;
    let sizes: Vec<usize> = [3usize, 6, 9, 12, 15, 18, 20, 22]
        .into_iter()
        .filter(|&s| s <= max_size && s <= env.gen.type_ids.len())
        .collect();
    let algos: Vec<Algo> = vec![
        Algo::Order(OrderAlgorithm::Greedy),
        Algo::Order(OrderAlgorithm::IIRandom {
            restarts: 10,
            seed: 0xCEB,
        }),
        Algo::Order(OrderAlgorithm::IIGreedy),
        Algo::Order(OrderAlgorithm::DpLd),
        Algo::Tree(TreeAlgorithm::ZStream),
        Algo::Tree(TreeAlgorithm::ZStreamOrd),
        Algo::Tree(TreeAlgorithm::DpB),
    ];
    let mut header = vec!["algorithm".to_string()];
    header.extend(sizes.iter().map(|s| format!("n={s}")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut cost_table = Table::new(&hdr);
    let mut time_table = Table::new(&hdr);
    let mut rng = StdRng::seed_from_u64(env.scale.seed ^ 0xF16);
    // Pre-generate patterns per size so every algorithm sees the same ones.
    let mut patterns: Vec<(usize, Vec<cep_core::pattern::Pattern>)> = Vec::new();
    for &s in &sizes {
        let ps = (0..per_size)
            .map(|_| {
                generate_pattern(
                    PatternSetKind::Sequence,
                    s,
                    &env.gen,
                    &env.workload,
                    &mut rng,
                )
                .expect("generation fits symbol count")
                .pattern
            })
            .collect();
        patterns.push((s, ps));
    }
    // Baseline: EFREQ cost per pattern (order model; tree algorithms are
    // normalized against EFREQ's left-deep tree).
    for &algo in &algos {
        let mut crow = vec![algo.to_string()];
        let mut trow = vec![algo.to_string()];
        for (_, ps) in &patterns {
            let mut ratios = Vec::new();
            let mut times = Vec::new();
            for p in ps {
                let base = match algo {
                    Algo::Order(_) => plan_pattern(p, env, Algo::Order(OrderAlgorithm::EFreq), 0.0),
                    Algo::Tree(_) => {
                        // EFREQ leaf order as a left-deep tree: ZStream over
                        // the EFREQ order degenerate case is not directly
                        // expressible; use ZStream native as the tree
                        // baseline (the empirically worst tree method).
                        plan_pattern(p, env, Algo::Tree(TreeAlgorithm::ZStream), 0.0)
                    }
                };
                let Ok(base) = base else { continue };
                // Planning can fail when the size exceeds an algorithm's cap.
                if let Ok(planned) = plan_pattern(p, env, algo, 0.0) {
                    if planned.plan_cost > 0.0 {
                        ratios.push(base.plan_cost / planned.plan_cost);
                    }
                    times.push(planned.plan_time_s);
                }
            }
            if ratios.is_empty() {
                crow.push("-".into());
                trow.push("-".into());
            } else {
                crow.push(format!("{:.2}x", geometric_mean(&ratios)));
                trow.push(format!("{:.2}ms", mean(&times) * 1e3));
            }
        }
        cost_table.row(crow);
        time_table.row(trow);
    }
    writeln!(
        out,
        "\n-- Fig 17(a): normalized plan cost (baseline / algorithm; higher is better)"
    )?;
    writeln!(
        out,
        "   order algorithms vs EFREQ, tree algorithms vs ZSTREAM; '-' = beyond size cap"
    )?;
    write!(out, "{}", cost_table.render())?;
    writeln!(out, "\n-- Fig 17(b): mean plan-generation time")?;
    write!(out, "{}", time_table.render())?;
    Ok(())
}

/// Figure 18: throughput vs latency for the 6 JQPG algorithms under
/// α ∈ {0, 0.5, 1}.
pub fn latency_tradeoff(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "== Figure 18: throughput vs latency (alpha sweep) ==")?;
    let algos: Vec<Algo> = vec![
        Algo::Order(OrderAlgorithm::Greedy),
        Algo::Order(OrderAlgorithm::IIRandom {
            restarts: 10,
            seed: 0xCEB,
        }),
        Algo::Order(OrderAlgorithm::IIGreedy),
        Algo::Order(OrderAlgorithm::DpLd),
        Algo::Tree(TreeAlgorithm::ZStreamOrd),
        Algo::Tree(TreeAlgorithm::DpB),
    ];
    let mut t = Table::new(&["algorithm", "alpha", "throughput (e/s)", "avg latency (ms)"]);
    for &algo in &algos {
        for alpha in [0.0, 0.5, 1.0] {
            let results = run_set(env, PatternSetKind::Sequence, algo, alpha);
            let th: Vec<f64> = results.iter().map(|(_, o)| o.throughput_eps).collect();
            let lat: Vec<f64> = results.iter().map(|(_, o)| o.avg_latency_ms).collect();
            t.row(vec![
                algo.to_string(),
                format!("{alpha}"),
                si(geometric_mean(&th)),
                format!("{:.4}", mean(&lat)),
            ]);
        }
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(expected shape: higher alpha lowers latency at some throughput cost)"
    )?;
    Ok(())
}

/// Figure 19: throughput under the three selection-strategy regimes.
pub fn selection_strategies(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "== Figure 19: selection strategies (sequence set) ==")?;
    let strategies = [
        SelectionStrategy::SkipTillAnyMatch,
        SelectionStrategy::SkipTillNextMatch,
        SelectionStrategy::StrictContiguity,
    ];
    for (family, algos) in [
        ("order-based (Fig 19a)", order_algos()),
        ("tree-based (Fig 19b)", tree_algos()),
    ] {
        let mut header = vec!["algorithm".to_string()];
        header.extend(strategies.iter().map(|s| s.to_string()));
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&hdr);
        for &algo in &algos {
            let mut row = vec![algo.to_string()];
            for &strategy in &strategies {
                let cfg = engine_config();
                let set = env.pattern_set(PatternSetKind::Sequence);
                let mut th = Vec::new();
                for gp in &set {
                    let mut p = gp.pattern.clone();
                    p.strategy = strategy;
                    if let Ok(o) = plan_and_run(&p, env, algo, 0.0, &cfg) {
                        th.push(o.throughput_eps);
                    }
                }
                row.push(si(geometric_mean(&th)));
            }
            t.row(row);
        }
        writeln!(
            out,
            "\n-- {family}: throughput (events/s, log-scale in the paper)"
        )?;
        write!(out, "{}", t.render())?;
    }
    Ok(())
}

/// Sharded scaling (beyond the paper; the ROADMAP's scale-out direction):
/// end-to-end throughput of `cep_shard`'s worker-pool runtime over a
/// partition-replicated stock stream, sweeping the shard count in powers of
/// two up to `max_shards`.
///
/// The query equates the `replica` attribute across all positions, so it is
/// partition-local: every shard count — including the single-threaded
/// baseline — must detect the identical match set, which this driver
/// asserts while measuring.
pub fn sharded_scaling(
    env: &ExperimentEnv,
    max_shards: usize,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    use crate::env::replicated_stock_workload;
    use cep_core::engine::{run_to_completion, Engine};
    use cep_nfa::NfaEngine;
    use cep_shard::{RoutingPolicy, ShardedRuntime};

    writeln!(
        out,
        "== Sharded scaling: worker shards over a partition-replicated stock stream =="
    )?;
    let replicas = (max_shards.max(8)) as u32;
    let (gen, cp) = replicated_stock_workload(
        env.scale.duration_ms,
        env.scale.rate_scale,
        env.scale.seed ^ 0x5AD,
        replicas,
        env.scale.window_ms,
    );
    let factory = {
        move || {
            Box::new(NfaEngine::with_trivial_plan(cp.clone(), engine_config())) as Box<dyn Engine>
        }
    };
    writeln!(
        out,
        "({} events, {} replicas, window {} ms)",
        gen.stream.len(),
        replicas,
        env.scale.window_ms
    )?;
    let mut engine = factory();
    let base = run_to_completion(engine.as_mut(), &gen.stream, false);
    let base_eps = base.metrics.throughput_eps();
    let mut t = Table::new(&["shards", "throughput (e/s)", "speedup", "matches"]);
    t.row(vec![
        "serial".into(),
        si(base_eps),
        "1.00x".into(),
        base.match_count.to_string(),
    ]);
    // Powers of two up to the requested count, always ending exactly on
    // it (so `--shards 6` really measures 6 shards).
    let mut sweep = Vec::new();
    let mut s = 1;
    while s < max_shards {
        sweep.push(s);
        s *= 2;
    }
    sweep.push(max_shards);
    for shards in sweep {
        let r = ShardedRuntime::with_shards(shards).run(
            &factory,
            &gen.stream,
            RoutingPolicy::Partition,
            false,
        );
        assert_eq!(
            r.match_count, base.match_count,
            "partition-local query must be exact under sharding"
        );
        let eps = r.metrics.throughput_eps();
        t.row(vec![
            shards.to_string(),
            si(eps),
            format!("{:.2}x", eps / base_eps),
            r.match_count.to_string(),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(identical match counts per row: the deterministic-merge guarantee)"
    )?;
    Ok(())
}

/// Cross-partition scaling (beyond the paper; the ROADMAP's replicate-join
/// direction): end-to-end throughput of replicate-join sharding on a
/// workload whose **correlation attribute is not the partition
/// attribute** — accounts correlate stock updates that are partitioned by
/// symbol. Split-only routing is rejected for this query
/// (`ShardRouter::for_query`); the replicate-join policy hashes the two
/// high-rate account-keyed symbols and broadcasts the rare unkeyed one,
/// and every shard count must reproduce the serial match set exactly
/// (asserted while measuring).
pub fn cross_partition(
    env: &ExperimentEnv,
    max_shards: usize,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    use crate::env::cross_key_stock_workload;
    use cep_core::engine::{run_to_completion, Engine};
    use cep_core::partition::QueryPartitioner;
    use cep_core::stats::MeasuredStats;
    use cep_nfa::NfaEngine;
    use cep_shard::{RoutingPolicy, ShardedRuntime};
    use std::sync::Arc;

    writeln!(
        out,
        "== Cross-partition scaling: replicate-join over an account-correlated, \
         symbol-partitioned stock stream =="
    )?;
    let accounts = 64;
    // The workload's symbol rates are absolute (25/20/2 events/s); the
    // scale's rate multiplier is tuned for 30-symbol figure sweeps, so
    // lift it here to keep the 3-symbol stream meaningfully loaded.
    let rate_scale = (env.scale.rate_scale * 16.0).min(1.0);
    let (gen, cp) = cross_key_stock_workload(
        env.scale.duration_ms,
        rate_scale,
        env.scale.seed ^ 0xC0A,
        accounts,
        env.scale.window_ms,
    );
    let stats = MeasuredStats::measure(&gen.stream);
    let spec = QueryPartitioner::analyze_measured(std::slice::from_ref(&cp), &stats)
        .expect("cross-key query partitions");
    writeln!(
        out,
        "({} events, {accounts} accounts, window {} ms, spec {spec})",
        gen.stream.len(),
        env.scale.window_ms
    )?;
    let factory = {
        let cp = cp.clone();
        move || {
            Box::new(NfaEngine::with_trivial_plan(cp.clone(), engine_config())) as Box<dyn Engine>
        }
    };
    // The routing guard: split-only policies are rejected for this query.
    let branches = std::slice::from_ref(&cp);
    let rejected = ShardedRuntime::with_shards(2)
        .run_query(
            &factory,
            &gen.stream,
            RoutingPolicy::Partition,
            branches,
            false,
        )
        .expect_err("partition routing must be rejected for cross-key queries");
    writeln!(out, "split-only routing rejected: {rejected}")?;
    let mut engine = factory();
    let base = run_to_completion(engine.as_mut(), &gen.stream, false);
    let base_eps = base.metrics.throughput_eps();
    let mut t = Table::new(&[
        "shards",
        "throughput (e/s)",
        "speedup",
        "matches",
        "replicated",
        "dedup hits",
    ]);
    t.row(vec![
        "serial".into(),
        si(base_eps),
        "1.00x".into(),
        base.match_count.to_string(),
        "0".into(),
        "0".into(),
    ]);
    let mut sweep = Vec::new();
    let mut s = 1;
    while s < max_shards {
        sweep.push(s);
        s *= 2;
    }
    sweep.push(max_shards);
    let policy = RoutingPolicy::ReplicateJoin(Arc::new(spec));
    for shards in sweep {
        let r = ShardedRuntime::with_shards(shards)
            .run_query(&factory, &gen.stream, policy.clone(), branches, false)
            .expect("replicate-join policy is sound for this query");
        assert_eq!(
            r.match_count, base.match_count,
            "replicate-join must be exact at {shards} shards"
        );
        let eps = r.metrics.throughput_eps();
        t.row(vec![
            shards.to_string(),
            si(eps),
            format!("{:.2}x", eps / base_eps),
            r.match_count.to_string(),
            r.metrics.replicated_events.to_string(),
            r.metrics.dedup_hits.to_string(),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(identical match counts per row: cross-partition exactness via \
         replicate-join + signature dedup)"
    )?;
    Ok(())
}

/// Adaptive drift (beyond the paper; the ROADMAP's adaptivity direction):
/// on a drifting-rate stock workload whose frequent and rare types swap
/// roles mid-stream, compares
///
/// * **static-initial** — the phase-1 plan, kept forever (what a
///   non-adaptive deployment runs);
/// * **adaptive** — `cep_adaptive::AdaptiveEngine` over the same initial
///   plan, hot-swapping on detected drift;
/// * **static-oracle** — the phase-2 plan from the start (the hindsight
///   bound on what adaptivity can recover).
///
/// All three must emit byte-identical match vectors (asserted); the
/// interesting numbers are post-drift throughput and partial matches
/// created, where the adaptive engine must beat the static initial plan.
pub fn adaptive_drift(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    use crate::env::drifting_stock_workload;
    use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
    use cep_core::engine::Engine;
    use cep_core::matches::Match;
    use cep_core::stream::EventStream;
    use cep_optimizer::Planner;
    use cep_shard::canonical_sort;
    use std::time::Instant;

    writeln!(
        out,
        "== Adaptive drift: live plan swap vs static plans on a rate flip =="
    )?;
    let phase_ms = env.scale.duration_ms.clamp(5_000, 30_000);
    let window_ms = 3_000.min(phase_ms / 2);
    let (gen, cp, sels) =
        drifting_stock_workload(phase_ms, phase_ms, env.scale.seed ^ 0xADA, window_ms);
    let split_ts = gen.drift_start_ms();
    writeln!(
        out,
        "({} events, drift at {split_ts} ms, window {window_ms} ms)",
        gen.stream.len()
    )?;
    let replanner_for = |stats: &cep_core::stats::MeasuredStats| {
        PlanReplanner::new(
            vec![(cp.clone(), sels.clone())],
            stats,
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            engine_config(),
        )
        .expect("selectivities match the pattern's predicates")
    };
    let initial = replanner_for(&gen.initial_stats());
    let oracle = replanner_for(&gen.final_stats());
    writeln!(
        out,
        "initial plan {}, oracle plan {}",
        initial.describe(),
        oracle.describe()
    )?;

    /// Drives a full stream, timing the pre- and post-drift segments
    /// separately; returns (canonical matches, post-drift ns, post-drift
    /// events).
    fn drive(
        engine: &mut dyn Engine,
        stream: &EventStream,
        split_ts: u64,
    ) -> (Vec<Match>, u64, u64) {
        let mut matches = Vec::new();
        let mut post_ns = 0u64;
        let mut post_events = 0u64;
        for event in stream {
            let start = Instant::now();
            engine.process(event, &mut matches);
            let ns = start.elapsed().as_nanos() as u64;
            if event.ts >= split_ts {
                post_ns += ns;
                post_events += 1;
            }
        }
        let start = Instant::now();
        engine.flush(&mut matches);
        post_ns += start.elapsed().as_nanos() as u64;
        canonical_sort(&mut matches);
        (matches, post_ns, post_events)
    }

    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: window_ms,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };
    let mut engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("static-initial", initial.build()),
        (
            "adaptive",
            Box::new(AdaptiveEngine::new(
                initial.clone(),
                cp.window,
                adaptive_cfg,
            )),
        ),
        ("static-oracle", oracle.build()),
    ];
    let mut table = Table::new(&[
        "plan",
        "post-drift e/s",
        "vs initial",
        "partials",
        "swaps",
        "replayed",
        "matches",
    ]);
    let mut baseline_eps = 0.0;
    let mut baseline_partials = 0;
    let mut post_drift_events = 0u64;
    let mut adaptive_eps = 0.0;
    let mut adaptive_partials = 0;
    let mut adaptive_swaps = 0;
    let mut reference: Option<Vec<Match>> = None;
    for (name, engine) in &mut engines {
        let (matches, post_ns, post_events) = drive(engine.as_mut(), &gen.stream, split_ts);
        let eps = if post_ns == 0 {
            0.0
        } else {
            post_events as f64 / (post_ns as f64 / 1e9)
        };
        let m = engine.metrics();
        if *name == "static-initial" {
            baseline_eps = eps;
            baseline_partials = m.partial_matches_created;
            post_drift_events = post_events;
        }
        if *name == "adaptive" {
            adaptive_eps = eps;
            adaptive_partials = m.partial_matches_created;
            adaptive_swaps = m.plan_swaps;
        }
        table.row(vec![
            name.to_string(),
            si(eps),
            format!("{:.2}x", eps / baseline_eps.max(f64::MIN_POSITIVE)),
            m.partial_matches_created.to_string(),
            m.plan_swaps.to_string(),
            m.replayed_events.to_string(),
            matches.len().to_string(),
        ]);
        match &reference {
            None => reference = Some(matches),
            Some(r) => assert_eq!(
                &matches, r,
                "{name} diverged: every configuration must emit identical matches"
            ),
        }
    }
    write!(out, "{}", table.render())?;
    assert!(
        adaptive_swaps >= 1,
        "the rate flip must trigger at least one plan swap"
    );
    assert!(
        adaptive_partials < baseline_partials,
        "adaptive ({adaptive_partials} partial matches) must beat the static \
         initial plan ({baseline_partials}) after the drift point"
    );
    // The partial-match assert above is the deterministic form of the
    // throughput claim; wall-clock timing on a loaded machine can still
    // wobble, so an inversion is reported rather than aborting the run.
    if post_drift_events >= 500 && adaptive_eps <= baseline_eps {
        writeln!(
            out,
            "WARNING: adaptive ({adaptive_eps:.0} e/s) did not beat the \
             static initial plan ({baseline_eps:.0} e/s) on wall clock \
             despite doing less work — likely scheduler noise; rerun"
        )?;
    }
    writeln!(
        out,
        "(identical match vectors asserted; adaptive created {:.1}% of the \
         static-initial partial matches and ran {:.2}x its post-drift \
         throughput)",
        100.0 * adaptive_partials as f64 / baseline_partials as f64,
        adaptive_eps / baseline_eps.max(f64::MIN_POSITIVE)
    )?;
    Ok(())
}

/// Beyond the paper: selectivity-drift experiment — correlations shift
/// while arrival rates stay flat, the blind spot of rate-only adaptivity.
///
/// Four configurations over one drifting stream:
///
/// * **static-initial** — the phase-1 plan, never revisited;
/// * **rate-adaptive** — `AdaptiveEngine` monitoring arrival rates only
///   (the PR-3 loop): by construction it cannot see the flip, so it must
///   not swap after the drift point (stream-start calibration churn on
///   Poisson noise is possible and reported separately);
/// * **full-adaptive** — the same engine with online selectivity
///   re-estimation: it must detect the flip and swap;
/// * **static-oracle** — the phase-2 plan from the start (the hindsight
///   bound).
///
/// All four must emit byte-identical match vectors (asserted); the
/// deliverable is the full-adaptive engine recovering the oracle's
/// partial-match footprint after the drift point while the two rate-bound
/// configurations stay stuck with the stale plan.
pub fn selectivity_drift(env: &ExperimentEnv, out: &mut dyn Write) -> std::io::Result<()> {
    use crate::env::selectivity_drift_workload;
    use cep_adaptive::{AdaptiveConfig, AdaptiveEngine, PlanKind, PlanReplanner, Replanner};
    use cep_core::engine::Engine;
    use cep_core::matches::Match;
    use cep_optimizer::Planner;
    use cep_shard::canonical_sort;

    writeln!(
        out,
        "== Selectivity drift: correlations shift, rates stay flat =="
    )?;
    let phase_ms = env.scale.duration_ms.clamp(5_000, 30_000);
    let window_ms = 3_000.min(phase_ms / 2);
    let (gen, cp, initial_sels, oracle_sels) =
        selectivity_drift_workload(phase_ms, phase_ms, env.scale.seed ^ 0x5E1, window_ms);
    writeln!(
        out,
        "({} events, drift at {} ms, window {window_ms} ms, \
         phase-1 sels {:.3}/{:.3}, phase-2 sels {:.3}/{:.3})",
        gen.stream.len(),
        gen.drift_start_ms(),
        initial_sels[0],
        initial_sels[1],
        oracle_sels[0],
        oracle_sels[1],
    )?;
    let stats = gen.stats();
    let replanner_for = |sels: &[f64]| {
        PlanReplanner::new(
            vec![(cp.clone(), sels.to_vec())],
            &stats,
            Planner::default(),
            PlanKind::Order(OrderAlgorithm::DpLd),
            engine_config(),
        )
        .expect("selectivities match the pattern's predicates")
    };
    let initial = replanner_for(&initial_sels);
    let oracle = replanner_for(&oracle_sels);
    writeln!(
        out,
        "initial plan {}, oracle plan {}",
        initial.describe(),
        oracle.describe()
    )?;
    let adaptive_cfg = AdaptiveConfig {
        horizon_ms: window_ms,
        drift_threshold: 0.5,
        check_every: 32,
        cooldown_events: 128,
        ..AdaptiveConfig::default()
    };
    let full = initial
        .clone()
        .with_selectivity_monitoring(window_ms, 0.5, 512);
    let mut engines: Vec<(&str, Box<dyn Engine>)> = vec![
        ("static-initial", initial.build()),
        (
            "rate-adaptive",
            Box::new(AdaptiveEngine::new(
                initial.clone(),
                cp.window,
                adaptive_cfg.clone(),
            )),
        ),
        (
            "full-adaptive",
            Box::new(AdaptiveEngine::new(full, cp.window, adaptive_cfg)),
        ),
        ("static-oracle", oracle.build()),
    ];
    let mut table = Table::new(&[
        "plan",
        "partials",
        "swaps",
        "post-drift swaps",
        "suppressed",
        "sel samples",
        "replayed",
        "matches",
    ]);
    let mut partials = std::collections::HashMap::new();
    let mut reference: Option<Vec<Match>> = None;
    let mut full_post_swaps = 0;
    let mut rate_post_swaps = 0;
    let drift_ts = gen.drift_start_ms();
    for (name, engine) in &mut engines {
        let mut matches = Vec::new();
        // Swaps before the drift point are stream-start calibration churn
        // (the rate monitor warming up on Poisson noise); the claim under
        // test is about the *response to the correlation flip*, so swap
        // counts are split at the drift timestamp.
        let mut swaps_at_drift = 0;
        for event in &gen.stream {
            if event.ts < drift_ts {
                swaps_at_drift = engine.metrics().plan_swaps;
            }
            engine.process(event, &mut matches);
        }
        engine.flush(&mut matches);
        canonical_sort(&mut matches);
        let m = engine.metrics();
        let post_swaps = m.plan_swaps - swaps_at_drift;
        partials.insert(*name, m.partial_matches_created);
        if *name == "full-adaptive" {
            full_post_swaps = post_swaps;
        }
        if *name == "rate-adaptive" {
            rate_post_swaps = post_swaps;
        }
        table.row(vec![
            name.to_string(),
            m.partial_matches_created.to_string(),
            m.plan_swaps.to_string(),
            post_swaps.to_string(),
            m.suppressed_swaps.to_string(),
            si(m.selectivity_samples as f64),
            m.replayed_events.to_string(),
            matches.len().to_string(),
        ]);
        match &reference {
            None => reference = Some(matches),
            Some(r) => assert_eq!(
                &matches, r,
                "{name} diverged: every configuration must emit identical matches"
            ),
        }
    }
    write!(out, "{}", table.render())?;
    assert_eq!(
        rate_post_swaps, 0,
        "rates are flat across the drift: the rate-only monitor must not \
         react to the correlation flip"
    );
    assert!(
        full_post_swaps >= 1,
        "the correlation flip must trigger a selectivity-driven swap"
    );
    let stale = partials["static-initial"];
    let adapted = partials["full-adaptive"];
    let ideal = partials["static-oracle"];
    assert!(
        adapted < stale,
        "full-adaptive ({adapted} partial matches) must beat the stale \
         plan ({stale})"
    );
    writeln!(
        out,
        "(identical match vectors asserted; full-adaptive created {:.1}% of \
         the stale plan's partial matches, vs {:.1}% for the oracle bound)",
        100.0 * adapted as f64 / stale as f64,
        100.0 * ideal as f64 / stale as f64,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Scale;

    fn micro_env() -> ExperimentEnv {
        let mut s = Scale::quick();
        s.duration_ms = 6_000;
        s.window_ms = 2_500;
        s.per_size = 1;
        s.sizes = 3..=3;
        ExperimentEnv::setup(s)
    }

    #[test]
    fn pattern_types_runs_and_prints() {
        let env = micro_env();
        let mut buf = Vec::new();
        pattern_types(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Figures 4 & 5"));
        assert!(s.contains("TRIVIAL"));
        assert!(s.contains("DP-B"));
    }

    #[test]
    fn by_size_runs_for_every_category() {
        let env = micro_env();
        for kind in PatternSetKind::all() {
            let mut buf = Vec::new();
            by_size(&env, kind, &mut buf).unwrap();
            assert!(!buf.is_empty());
        }
    }

    #[test]
    fn cost_validation_reports_fit() {
        let env = micro_env();
        let mut buf = Vec::new();
        cost_validation(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("throughput ~ 1/cost^c"));
    }

    #[test]
    fn large_patterns_skips_over_cap_sizes() {
        let env = micro_env();
        let mut buf = Vec::new();
        large_patterns(&env, 20, 1, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Fig 17(a)"));
        // DP-B is capped at 18: the n=20 cell must be '-'.
        let dpb_line = s
            .lines()
            .find(|l| l.trim_start().starts_with("DP-B"))
            .unwrap();
        assert!(dpb_line.contains('-'));
    }

    #[test]
    fn latency_tradeoff_prints_alpha_rows() {
        let env = micro_env();
        let mut buf = Vec::new();
        latency_tradeoff(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.matches("DP-LD").count(), 3, "one row per alpha");
    }

    #[test]
    fn strategies_prints_all_three() {
        let env = micro_env();
        let mut buf = Vec::new();
        selection_strategies(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("skip-till-any-match"));
        assert!(s.contains("skip-till-next-match"));
        assert!(s.contains("strict-contiguity"));
    }

    #[test]
    fn sharded_scaling_prints_equal_match_counts() {
        let env = micro_env();
        let mut buf = Vec::new();
        sharded_scaling(&env, 4, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Sharded scaling"));
        assert!(s.contains("speedup"));
        assert!(s.contains("serial"));
    }

    #[test]
    fn adaptive_drift_swaps_and_stays_exact() {
        let env = micro_env();
        let mut buf = Vec::new();
        adaptive_drift(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Adaptive drift"));
        assert!(s.contains("static-initial"));
        assert!(s.contains("static-oracle"));
        assert!(s.contains("identical match vectors asserted"));
    }

    #[test]
    fn selectivity_drift_swaps_only_with_monitoring() {
        let env = micro_env();
        let mut buf = Vec::new();
        selectivity_drift(&env, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Selectivity drift"));
        assert!(s.contains("rate-adaptive"));
        assert!(s.contains("full-adaptive"));
        assert!(s.contains("identical match vectors asserted"));
    }

    #[test]
    fn rank_correlation_detects_monotone() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 9.0, 100.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-9);
        let c = [100.0, 9.0, 4.0, 2.0];
        assert!((rank_correlation(&a, &c) + 1.0).abs() < 1e-9);
    }
}
