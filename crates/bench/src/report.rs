//! Plain-text table rendering for the experiment reports.

use std::fmt::Write as _;

/// A simple aligned-column table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, " {:<w$} ", cells[i], w = widths[i]);
                if i + 1 < ncols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Human-friendly magnitude formatting: `12.3k`, `4.56M`, etc.
pub fn si(v: f64) -> String {
    let (value, suffix) = if v.abs() >= 1e9 {
        (v / 1e9, "G")
    } else if v.abs() >= 1e6 {
        (v / 1e6, "M")
    } else if v.abs() >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    if value.abs() >= 100.0 || suffix.is_empty() && value.fract() == 0.0 {
        format!("{value:.0}{suffix}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}{suffix}")
    } else {
        format!("{value:.2}{suffix}")
    }
}

/// Bytes with binary-ish SI formatting.
pub fn bytes(v: usize) -> String {
    format!("{}B", si(v as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["algo", "throughput"]);
        t.row(vec!["TRIVIAL".into(), "1.2k".into()]);
        t.row(vec!["DP-B".into(), "999".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[2].starts_with(" TRIVIAL"));
        // all lines same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(si(950.0), "950");
        assert_eq!(si(12_300.0), "12.3k");
        assert_eq!(si(4_560_000.0), "4.56M");
        assert_eq!(si(2_000_000_000.0), "2.00G");
    }
}
