//! Experiment harness CLI: regenerates the figures of Section 7.3.
//!
//! ```text
//! experiments <subcommand> [--full] [--seed N] [--per-size N] [--duration-ms N] [--shards N]
//!
//! subcommands:
//!   pattern-types          Figures 4 & 5
//!   by-size --set <kind>   Figures 6..15 (kind: sequence|negation|conjunction|kleene|disjunction)
//!   cost-validation        Figure 16
//!   large-patterns         Figure 17 (planning only)
//!   latency-tradeoff       Figure 18
//!   selection-strategies   Figure 19
//!   sharded-scaling        beyond the paper: cep-shard worker sweep (1..=--shards)
//!   adaptive-drift         beyond the paper: live plan swap vs static plans on a rate flip
//!   selectivity-drift      beyond the paper: selectivity re-estimation on a correlation flip
//!   cross-partition        beyond the paper: replicate-join sharding on a cross-key workload
//!   all                    everything above
//!   analyze                static-analysis demo: lint demo queries, verify plan invariants
//!   bench-smoke            CI gate: quick deterministic scenario counts vs a committed
//!                          baseline [--out PATH] [--baseline PATH] [--write-baseline]
//!   observe                traced adaptive + sharded runs: decision timeline, latency
//!                          percentiles, Prometheus/JSON registry snapshot, JSONL trace
//!                          [--prom PATH] [--json PATH] [--trace PATH]
//!   check-obs              CI gate over observe's artifacts: validate the exposition
//!                          format, round-trip the trace [--prom PATH] [--trace PATH]
//! ```

use cep_bench::env::{ExperimentEnv, Scale};
use cep_bench::figures;
use cep_streamgen::PatternSetKind;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: experiments <pattern-types|by-size|cost-validation|large-patterns|\
         latency-tradeoff|selection-strategies|sharded-scaling|adaptive-drift|\
         selectivity-drift|cross-partition|all|analyze|bench-smoke|observe|check-obs> \
         [--set KIND] [--full] [--seed N] [--per-size N] [--duration-ms N] [--shards N] \
         [--out PATH] [--baseline PATH] [--write-baseline] \
         [--prom PATH] [--json PATH] [--trace PATH]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_kind(s: &str) -> PatternSetKind {
    match s {
        "sequence" => PatternSetKind::Sequence,
        "negation" => PatternSetKind::Negation,
        "conjunction" => PatternSetKind::Conjunction,
        "kleene" | "iteration" => PatternSetKind::Kleene,
        "disjunction" | "composite" => PatternSetKind::Disjunction,
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cmd = args[0].clone();
    if cmd == "bench-smoke" {
        return bench_smoke(&args[1..]);
    }
    if cmd == "observe" || cmd == "check-obs" {
        return observe(&cmd, &args[1..]);
    }
    if cmd == "analyze" {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        return match cep_bench::analyze_demo::run(&mut out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("analyze demo failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut scale = Scale::quick();
    let mut set: Option<PatternSetKind> = None;
    let mut shards = 8usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--set" => {
                i += 1;
                set = Some(parse_kind(args.get(i).map(String::as_str).unwrap_or("")));
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--per-size" => {
                i += 1;
                scale.per_size = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--duration-ms" => {
                i += 1;
                scale.duration_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# CEP join-optimization experiments (seed {}, {} symbols, {} ms stream)",
        scale.seed, scale.symbols, scale.duration_ms
    )
    .ok();
    let env = ExperimentEnv::setup(scale);
    let result = match cmd.as_str() {
        "pattern-types" => figures::pattern_types(&env, &mut out),
        "by-size" => figures::by_size(&env, set.unwrap_or(PatternSetKind::Sequence), &mut out),
        "cost-validation" => figures::cost_validation(&env, &mut out),
        "large-patterns" => figures::large_patterns(&env, 22, 3, &mut out),
        "latency-tradeoff" => figures::latency_tradeoff(&env, &mut out),
        "selection-strategies" => figures::selection_strategies(&env, &mut out),
        "sharded-scaling" => figures::sharded_scaling(&env, shards, &mut out),
        "adaptive-drift" => figures::adaptive_drift(&env, &mut out),
        "selectivity-drift" => figures::selectivity_drift(&env, &mut out),
        "cross-partition" => figures::cross_partition(&env, shards, &mut out),
        "all" => figures::pattern_types(&env, &mut out)
            .and_then(|_| {
                for kind in PatternSetKind::all() {
                    figures::by_size(&env, kind, &mut out)?;
                }
                Ok(())
            })
            .and_then(|_| figures::cost_validation(&env, &mut out))
            .and_then(|_| figures::large_patterns(&env, 22, 3, &mut out))
            .and_then(|_| figures::latency_tradeoff(&env, &mut out))
            .and_then(|_| figures::selection_strategies(&env, &mut out))
            .and_then(|_| figures::sharded_scaling(&env, shards, &mut out))
            .and_then(|_| figures::adaptive_drift(&env, &mut out))
            .and_then(|_| figures::selectivity_drift(&env, &mut out))
            .and_then(|_| figures::cross_partition(&env, shards, &mut out)),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The observability demo and its artifact gate (see
/// [`cep_bench::observe`]): `observe` runs the traced workloads and dumps
/// the timeline, percentile table, and registry snapshot; `check-obs`
/// re-validates artifacts a previous `observe` wrote.
fn observe(cmd: &str, args: &[String]) -> ExitCode {
    let mut prom_path = "OBS_PR7.prom".to_string();
    let mut json_path = "OBS_PR7.json".to_string();
    let mut trace_path = "OBS_PR7_trace.jsonl".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--prom" => {
                i += 1;
                prom_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = if cmd == "observe" {
        cep_bench::observe::run(&prom_path, &json_path, &trace_path, &mut out)
    } else {
        cep_bench::observe::check(&prom_path, &trace_path, &mut out)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{cmd} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The CI bench-regression gate (see [`cep_bench::smoke`]): run the quick
/// deterministic scenarios, write the full report, and fail on any count
/// divergence from the committed baseline.
fn bench_smoke(args: &[String]) -> ExitCode {
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut baseline_path = "ci/bench_baseline.json".to_string();
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--write-baseline" => write_baseline = true,
            _ => usage(),
        }
        i += 1;
    }
    let stdout = std::io::stdout();
    let mut log = stdout.lock();
    writeln!(log, "# bench-smoke gate (deterministic quick scenarios)").ok();
    match cep_bench::smoke::run(&out_path, &baseline_path, write_baseline, &mut log) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
