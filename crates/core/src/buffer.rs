//! Per-type sliding-window event buffers shared by the engines.

use crate::event::{EventRef, Timestamp, TypeId};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Buffers events per type, retaining only those inside the time window
/// relative to the stream watermark.
///
/// Both engines (and the naive oracle) store out-of-plan-order events here;
/// this is the "dedicated buffer" of the lazy NFA (Section 2.2) and the leaf
/// storage of the tree model (Section 2.3).
#[derive(Debug, Default)]
pub struct TypeBuffers {
    buffers: HashMap<TypeId, VecDeque<EventRef>>,
    total: usize,
}

impl TypeBuffers {
    /// Creates empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (must arrive in non-decreasing ts order).
    pub fn push(&mut self, e: EventRef) {
        self.buffers.entry(e.type_id).or_default().push_back(e);
        self.total += 1;
    }

    /// Drops events that can no longer participate in any match:
    /// `ts + window < watermark`.
    pub fn prune(&mut self, watermark: Timestamp, window: u64) {
        for buf in self.buffers.values_mut() {
            while let Some(front) = buf.front() {
                if front.ts + window < watermark {
                    buf.pop_front();
                    self.total -= 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Iterates over buffered events of one type, oldest first.
    pub fn iter_type(&self, type_id: TypeId) -> impl Iterator<Item = &EventRef> {
        self.buffers.get(&type_id).into_iter().flatten()
    }

    /// Total number of buffered events, for the memory metric.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether all buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use std::sync::Arc;

    fn ev(tid: u32, ts: u64) -> EventRef {
        Arc::new(Event::new(TypeId(tid), ts, vec![]))
    }

    #[test]
    fn push_and_iterate_by_type() {
        let mut b = TypeBuffers::new();
        b.push(ev(0, 1));
        b.push(ev(1, 2));
        b.push(ev(0, 3));
        assert_eq!(b.iter_type(TypeId(0)).count(), 2);
        assert_eq!(b.iter_type(TypeId(1)).count(), 1);
        assert_eq!(b.iter_type(TypeId(9)).count(), 0);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn pruning_respects_window() {
        let mut b = TypeBuffers::new();
        b.push(ev(0, 1));
        b.push(ev(0, 5));
        b.push(ev(0, 10));
        b.prune(12, 5); // keep ts + 5 >= 12, i.e. ts >= 7
        let ts: Vec<u64> = b.iter_type(TypeId(0)).map(|e| e.ts).collect();
        assert_eq!(ts, vec![10]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn boundary_event_is_kept() {
        let mut b = TypeBuffers::new();
        b.push(ev(0, 5));
        b.prune(10, 5); // 5 + 5 == 10: still usable
        assert_eq!(b.len(), 1);
        b.prune(11, 5);
        assert!(b.is_empty());
    }
}
