//! Error type shared across the CEP stack.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing schemas, patterns, plans, or parsing
/// pattern specifications.
///
/// Runtime event processing is infallible by design: malformed inputs are
/// rejected at construction time, so engines never need error paths on the
/// hot per-event code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CepError {
    /// Invalid schema or catalog operation.
    Schema(String),
    /// Structurally invalid pattern (e.g., NOT applied to a composite).
    Pattern(String),
    /// Invalid evaluation plan for the given pattern.
    Plan(String),
    /// Pattern-specification parse error with position information.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// 1-based line of the error (0 when the source is unavailable).
        line: u32,
        /// 1-based column of the error (0 when the source is unavailable).
        column: u32,
    },
    /// Missing or inconsistent statistics for plan generation.
    Stats(String),
    /// An event was pushed into a stream builder behind its watermark.
    ///
    /// Streams are ordered by occurrence time; routing layers that feed a
    /// builder from multiple sources surface their misuse through this
    /// variant (see [`crate::stream::StreamBuilder::try_push_partitioned`]).
    OutOfOrder {
        /// Timestamp of the offending event.
        ts: u64,
        /// The builder's watermark (largest timestamp accepted so far).
        last_ts: u64,
    },
    /// A sharded routing policy that would lose or duplicate matches for
    /// the given query (e.g. hash routing a query whose correlation
    /// attribute is not the routing attribute). The message points at the
    /// sound alternative — usually the replicate-join policy.
    Routing(String),
}

impl fmt::Display for CepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CepError::Schema(m) => write!(f, "schema error: {m}"),
            CepError::Pattern(m) => write!(f, "pattern error: {m}"),
            CepError::Plan(m) => write!(f, "plan error: {m}"),
            CepError::Parse {
                message,
                offset,
                line,
                column,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "parse error at line {line}, column {column} (byte {offset}): {message}"
                    )
                } else {
                    write!(f, "parse error at byte {offset}: {message}")
                }
            }
            CepError::Stats(m) => write!(f, "statistics error: {m}"),
            CepError::OutOfOrder { ts, last_ts } => write!(
                f,
                "out-of-order push: event ts {ts} is behind watermark {last_ts}; \
                 streams must be pushed in non-decreasing ts order"
            ),
            CepError::Routing(m) => write!(f, "routing error: {m}"),
        }
    }
}

impl Error for CepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CepError::Schema("x".into()).to_string().contains("schema"));
        assert!(CepError::Pattern("x".into())
            .to_string()
            .contains("pattern"));
        assert!(CepError::Plan("x".into()).to_string().contains("plan"));
        assert!(CepError::Stats("x".into())
            .to_string()
            .contains("statistics"));
        let p = CepError::Parse {
            message: "bad token".into(),
            offset: 17,
            line: 2,
            column: 4,
        };
        assert!(p.to_string().contains("17"));
        assert!(p.to_string().contains("line 2"));
        assert!(p.to_string().contains("column 4"));
        let p0 = CepError::Parse {
            message: "bad token".into(),
            offset: 17,
            line: 0,
            column: 0,
        };
        assert!(p0.to_string().contains("byte 17"));
        assert!(!p0.to_string().contains("line"));
        assert!(CepError::Routing("x".into())
            .to_string()
            .contains("routing"));
        let o = CepError::OutOfOrder { ts: 3, last_ts: 9 };
        let s = o.to_string();
        assert!(s.contains("ts 3"));
        assert!(s.contains("watermark 9"));
        assert!(s.contains("non-decreasing ts order"));
    }
}
