//! Negation semantics shared by all engines (Section 5.3).
//!
//! A negated element forbids matching events inside an *open* time interval
//! `(L, U)` determined by the positive match `M` and the window `W`:
//!
//! * `L = max ts(before)` if the negated element has preceding positives,
//!   else `max_ts(M) − W` (any earlier event cannot share the window);
//! * `U = min ts(after)` if it has succeeding positives, else
//!   `min_ts(M) + W`.
//!
//! When `U` lies beyond the current watermark (a *trailing* negation, or
//! negation inside a conjunction), the decision is deferred: the match is
//! parked until the watermark passes `U`, and arriving events of the negated
//! type are tested against parked matches. This realizes the paper's
//! "check ... added at the earliest point possible" strategy while staying
//! correct for windows that are still open.

use crate::buffer::TypeBuffers;
use crate::compile::CompiledPattern;
use crate::event::{Event, EventRef, Timestamp};
use crate::matches::Match;

/// The forbidden open interval `(lo, hi)` for negated element `k` of `cp`,
/// given the positive match `m`.
pub fn forbidden_interval(cp: &CompiledPattern, k: usize, m: &Match) -> (Timestamp, Timestamp) {
    let ne = &cp.negated[k];
    let lo = if ne.before.is_empty() {
        m.max_ts().saturating_sub(cp.window)
    } else {
        ne.before
            .iter()
            .map(|&ei| m.bindings[ei].1.max_ts())
            .max()
            .expect("non-empty before")
    };
    let hi = if ne.after.is_empty() {
        m.min_ts() + cp.window
    } else {
        ne.after
            .iter()
            .map(|&ei| m.bindings[ei].1.min_ts())
            .min()
            .expect("non-empty after")
    };
    (lo, hi)
}

/// Whether `candidate` invalidates match `m` via negated element `k`:
/// right type, inside the forbidden interval, and satisfying every
/// predicate that links the negated position to the match.
pub fn violates(cp: &CompiledPattern, k: usize, m: &Match, candidate: &Event) -> bool {
    let ne = &cp.negated[k];
    if candidate.type_id != ne.event_type {
        return false;
    }
    let (lo, hi) = forbidden_interval(cp, k, m);
    if !(candidate.ts > lo && candidate.ts < hi) {
        return false;
    }
    // Predicates involving the negated position must all hold for the
    // candidate to count as a forbidden occurrence. Predicates against a
    // Kleene element hold iff they hold for every member event.
    for &pi in cp.negated_predicates(k) {
        let p = &cp.predicates[pi];
        let (a, b) = p.position_pair();
        let other = match b {
            None => None,
            Some(b) if a == ne.position => Some(b),
            Some(_) => Some(a),
        };
        match other {
            None => {
                if !p.eval_single(ne.position, candidate) {
                    return false;
                }
            }
            Some(opos) => match cp.elem_index(opos) {
                Some(ei) => {
                    let all = m.bindings[ei].1.events().all(|e| {
                        p.eval(|pos| {
                            if pos == ne.position {
                                Some(candidate)
                            } else if pos == opos {
                                Some(e)
                            } else {
                                None
                            }
                        })
                    });
                    if !all {
                        return false;
                    }
                }
                // Predicate between two negated positions: each negated
                // element is checked independently, so ignore here.
                None => continue,
            },
        }
    }
    true
}

/// The watermark at which all negation checks for `m` become decidable.
pub fn decidable_at(cp: &CompiledPattern, m: &Match) -> Timestamp {
    (0..cp.negated.len())
        .map(|k| forbidden_interval(cp, k, m).1)
        .max()
        .unwrap_or(0)
}

/// Parked matches awaiting negation upper bounds.
#[derive(Debug, Default)]
pub struct DeferredStore {
    parked: Vec<Deferred>,
}

#[derive(Debug)]
struct Deferred {
    m: Match,
    decidable_at: Timestamp,
    dead: bool,
}

impl DeferredStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a freshly completed positive match.
    ///
    /// Scans already-buffered events of the negated types; if a violator
    /// exists the match is dropped. If every forbidden interval is already
    /// closed (watermark past its upper bound) the match is returned for
    /// immediate emission, otherwise it is parked.
    pub fn admit(
        &mut self,
        cp: &CompiledPattern,
        m: Match,
        watermark: Timestamp,
        buffers: &TypeBuffers,
    ) -> Option<Match> {
        for k in 0..cp.negated.len() {
            let ty = cp.negated[k].event_type;
            for e in buffers.iter_type(ty) {
                if violates(cp, k, &m, e) {
                    return None;
                }
            }
        }
        let at = decidable_at(cp, &m);
        if at <= watermark {
            Some(m)
        } else {
            self.parked.push(Deferred {
                m,
                decidable_at: at,
                dead: false,
            });
            None
        }
    }

    /// Tests an arriving event against parked matches, killing violated ones.
    pub fn on_event(&mut self, cp: &CompiledPattern, e: &EventRef) {
        if cp.negated.iter().all(|ne| ne.event_type != e.type_id) {
            return;
        }
        for d in &mut self.parked {
            if d.dead {
                continue;
            }
            for k in 0..cp.negated.len() {
                if violates(cp, k, &d.m, e) {
                    d.dead = true;
                    break;
                }
            }
        }
    }

    /// Releases matches whose forbidden intervals have closed; sets their
    /// emission watermark.
    pub fn drain_ready(&mut self, watermark: Timestamp, out: &mut Vec<Match>) {
        let mut i = 0;
        while i < self.parked.len() {
            if self.parked[i].dead {
                self.parked.swap_remove(i);
            } else if self.parked[i].decidable_at <= watermark {
                let mut d = self.parked.swap_remove(i);
                d.m.emitted_at = watermark;
                out.push(d.m);
            } else {
                i += 1;
            }
        }
    }

    /// Number of parked matches (alive), for the memory metric.
    pub fn len(&self) -> usize {
        self.parked.iter().filter(|d| !d.dead).count()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.parked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TypeId;
    use crate::matches::Binding;
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};
    use crate::value::Value;
    use std::sync::Arc;

    fn ev(tid: u32, ts: u64, seq: u64, x: i64) -> EventRef {
        let mut e = Event::new(TypeId(tid), ts, vec![Value::Int(x)]);
        e.seq = seq;
        Arc::new(e)
    }

    fn mk(bindings: Vec<(usize, Binding)>) -> Match {
        let last_ts = bindings
            .iter()
            .flat_map(|(_, b)| b.events().map(|e| e.ts).collect::<Vec<_>>())
            .max()
            .unwrap();
        Match {
            bindings,
            last_ts,
            emitted_at: last_ts,
        }
    }

    /// SEQ(A, NOT(B), C) WITHIN 100, with a.x == b.x required for violation.
    fn cp_internal_not() -> (CompiledPattern, usize, usize) {
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let nb = b.event(TypeId(1), "b");
        let c = b.event(TypeId(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, nb.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        (
            CompiledPattern::compile_single(&p).unwrap(),
            a.pos(),
            c.pos(),
        )
    }

    #[test]
    fn internal_interval_is_between_neighbours() {
        let (cp, _, _) = cp_internal_not();
        let m = mk(vec![
            (0, Binding::One(ev(0, 10, 0, 7))),
            (2, Binding::One(ev(2, 50, 2, 0))),
        ]);
        assert_eq!(forbidden_interval(&cp, 0, &m), (10, 50));
        assert_eq!(decidable_at(&cp, &m), 50);
    }

    #[test]
    fn violation_requires_predicates() {
        let (cp, _, _) = cp_internal_not();
        let m = mk(vec![
            (0, Binding::One(ev(0, 10, 0, 7))),
            (2, Binding::One(ev(2, 50, 2, 0))),
        ]);
        // Right type + interval + matching attribute => violation.
        assert!(violates(&cp, 0, &m, &ev(1, 30, 1, 7)));
        // Wrong attribute value => no violation.
        assert!(!violates(&cp, 0, &m, &ev(1, 30, 1, 8)));
        // Outside the interval => no violation.
        assert!(!violates(&cp, 0, &m, &ev(1, 50, 3, 7)));
        assert!(!violates(&cp, 0, &m, &ev(1, 10, 4, 7)));
        // Wrong type => no violation.
        assert!(!violates(&cp, 0, &m, &ev(2, 30, 5, 7)));
    }

    #[test]
    fn admit_drops_on_buffered_violator() {
        let (cp, _, _) = cp_internal_not();
        let mut buffers = TypeBuffers::new();
        buffers.push(ev(1, 30, 1, 7));
        let mut store = DeferredStore::new();
        let m = mk(vec![
            (0, Binding::One(ev(0, 10, 0, 7))),
            (2, Binding::One(ev(2, 50, 2, 0))),
        ]);
        assert_eq!(store.admit(&cp, m, 50, &buffers), None);
        assert!(store.is_empty());
    }

    #[test]
    fn admit_emits_when_decidable() {
        let (cp, _, _) = cp_internal_not();
        let buffers = TypeBuffers::new();
        let mut store = DeferredStore::new();
        let m = mk(vec![
            (0, Binding::One(ev(0, 10, 0, 7))),
            (2, Binding::One(ev(2, 50, 2, 0))),
        ]);
        assert!(store.admit(&cp, m, 50, &buffers).is_some());
    }

    /// SEQ(A, NOT(B)) WITHIN 100: trailing negation defers.
    fn cp_trailing_not() -> CompiledPattern {
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let nb = b.event(TypeId(1), "b");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let p = b.seq_exprs([ae, ne]).unwrap();
        CompiledPattern::compile_single(&p).unwrap()
    }

    #[test]
    fn trailing_negation_defers_and_releases() {
        let cp = cp_trailing_not();
        let buffers = TypeBuffers::new();
        let mut store = DeferredStore::new();
        let m = mk(vec![(0, Binding::One(ev(0, 10, 0, 0)))]);
        // Interval is (10, 110): undecidable at watermark 10.
        assert_eq!(store.admit(&cp, m, 10, &buffers), None);
        assert_eq!(store.len(), 1);
        let mut out = Vec::new();
        store.drain_ready(109, &mut out);
        assert!(out.is_empty());
        store.drain_ready(110, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].emitted_at, 110);
        assert!(store.is_empty());
    }

    #[test]
    fn parked_match_killed_by_late_violator() {
        let cp = cp_trailing_not();
        let buffers = TypeBuffers::new();
        let mut store = DeferredStore::new();
        let m = mk(vec![(0, Binding::One(ev(0, 10, 0, 0)))]);
        store.admit(&cp, m, 10, &buffers);
        store.on_event(&cp, &ev(1, 60, 1, 0));
        let mut out = Vec::new();
        store.drain_ready(200, &mut out);
        assert!(out.is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn conjunction_negation_is_windowed() {
        // AND(A, NOT(B), C) WITHIN 100: interval (max_ts-100, min_ts+100).
        let mut b = PatternBuilder::new(100);
        let a = b.event(TypeId(0), "a");
        let nb = b.event(TypeId(1), "b");
        let c = b.event(TypeId(2), "c");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.and_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let m = mk(vec![
            (0, Binding::One(ev(0, 150, 0, 0))),
            (2, Binding::One(ev(2, 180, 2, 0))),
        ]);
        assert_eq!(forbidden_interval(&cp, 0, &m), (80, 250));
        // A B before the span still violates (shared window).
        assert!(violates(&cp, 0, &m, &ev(1, 100, 1, 0)));
        assert!(violates(&cp, 0, &m, &ev(1, 200, 3, 0)));
        assert!(!violates(&cp, 0, &m, &ev(1, 80, 4, 0)));
    }
}
