//! Compiled predicate pipeline: fused evaluators and the plan cache.
//!
//! The interpreted path ([`crate::predicate::Predicate::eval`]) re-walks the
//! operand AST per evaluation, re-resolving attribute indices, comparison
//! kinds, and constants that were all fixed at pattern-compile time. This
//! module lowers each compiled pattern's predicate set once, at plan-build
//! time, into a [`PredicateProgram`]:
//!
//! * unary filters become [`CompiledPredicate`] evaluators with operand
//!   sources pre-resolved ([`Src`]); chains of conjunctive attribute-vs-
//!   constant filters over the same `(element, attr)` pair are *fused* into a
//!   single [`FusedRange`] interval test via
//!   [`CompiledPredicate::can_fuse_with`] / [`CompiledPredicate::fuse_with`],
//! * pairwise predicates become [`CompiledPair`] evaluators addressed by
//!   ordered element pair, so engines index them directly instead of
//!   re-matching positions per call.
//!
//! Programs are cached in a bounded, signature-keyed [`PlanCache`] so
//! adaptive replans and repeated factory builds that land on a previously
//! seen pattern reuse the compiled form ([`PlanCache::get_or_compile`]).
//! Cache lookups are traced via [`TraceRecord::PlanCacheLookup`].
//!
//! Compiled evaluation is semantically byte-identical to the interpreted
//! path: missing attributes and cross-kind incomparable values fail every
//! operator (including `!=`), exactly as in
//! [`CmpOp::test`](crate::predicate::CmpOp::test). The only observable
//! difference is the
//! [`predicate_evaluations`](crate::metrics::EngineMetrics::predicate_evaluations)
//! counter, which counts *evaluator invocations*: a fused range test counts
//! once where the interpreted path would count each collapsed conjunct.

use crate::compile::CompiledPattern;
use crate::event::{Event, TypeId};
use crate::predicate::{CmpOp, Operand, Predicate};
use crate::value::Value;
use cep_obs::{TraceRecord, Tracer};
use std::cmp::Ordering;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// FNV-1a streaming hasher used for plan signatures.
///
/// Deliberately not `std::hash::Hasher`: signatures must be stable across
/// runs and platforms (they key the plan cache and appear in trace records),
/// whereas `DefaultHasher` is explicitly unstable.
#[derive(Debug, Clone)]
pub(crate) struct SigHasher {
    state: u64,
}

impl SigHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> SigHasher {
        SigHasher {
            state: Self::OFFSET,
        }
    }

    pub(crate) fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.write_u8(0);
                self.write_u64(*i as u64);
            }
            Value::Float(f) => {
                self.write_u8(1);
                self.write_u64(f.to_bits());
            }
            Value::Bool(b) => {
                self.write_u8(2);
                self.write_u8(*b as u8);
            }
            Value::Str(s) => {
                self.write_u8(3);
                self.write_bytes(s.as_bytes());
            }
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.state
    }
}

pub(crate) fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Eq => 2,
        CmpOp::Ne => 3,
        CmpOp::Ge => 4,
        CmpOp::Gt => 5,
    }
}

pub(crate) fn write_operand(h: &mut SigHasher, o: &Operand) {
    match o {
        Operand::Attr { position, attr } => {
            h.write_u8(0);
            h.write_u64(*position as u64);
            h.write_u64(*attr as u64);
        }
        Operand::Ts { position } => {
            h.write_u8(1);
            h.write_u64(*position as u64);
        }
        Operand::Const(v) => {
            h.write_u8(2);
            h.write_value(v);
        }
    }
}

/// A pre-resolved operand source for a unary (single-event) evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum Src {
    /// Attribute at this index of the candidate event.
    Attr(usize),
    /// Occurrence timestamp of the candidate event, viewed as `Int`.
    Ts,
    /// Literal constant, resolved at compile time.
    Const(Value),
}

/// A resolved operand at evaluation time.
enum Resolved<'a> {
    Val(&'a Value),
    Ts(i64),
    Missing,
}

impl Src {
    fn resolve<'a>(&'a self, ev: &'a Event) -> Resolved<'a> {
        match self {
            Src::Attr(i) => match ev.attr(*i) {
                Some(v) => Resolved::Val(v),
                None => Resolved::Missing,
            },
            Src::Ts => Resolved::Ts(ev.ts as i64),
            Src::Const(v) => Resolved::Val(v),
        }
    }
}

/// Compares two resolved operands with the interpreted path's semantics:
/// a missing attribute is incomparable to everything (so every operator,
/// including `!=`, fails), and timestamps compare as `Value::Int`.
fn cmp_resolved(a: &Resolved<'_>, b: &Resolved<'_>) -> Option<Ordering> {
    match (a, b) {
        (Resolved::Missing, _) | (_, Resolved::Missing) => None,
        (Resolved::Val(x), Resolved::Val(y)) => x.partial_cmp_value(y),
        (Resolved::Ts(x), Resolved::Ts(y)) => Some(x.cmp(y)),
        (Resolved::Ts(x), Resolved::Val(y)) => Value::Int(*x).partial_cmp_value(y),
        (Resolved::Val(x), Resolved::Ts(y)) => x.partial_cmp_value(&Value::Int(*y)),
    }
}

/// A general compiled unary evaluator: `left op right` over one event.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledUnary {
    /// Left operand source.
    pub left: Src,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand source.
    pub right: Src,
}

impl CompiledUnary {
    /// Evaluates against one candidate event.
    pub fn eval(&self, ev: &Event) -> bool {
        self.op.test(cmp_resolved(
            &self.left.resolve(ev),
            &self.right.resolve(ev),
        ))
    }
}

/// A fused interval test over a single attribute: `lo < v < hi` with each
/// bound independently optional and independently strict.
///
/// Built from attribute-vs-constant filters with operators in
/// `{<, <=, ==, >=, >}` (equality becomes the point range `lo = hi`;
/// `!=` is not range-expressible because it *passes* on both orderings).
/// A missing or incomparable attribute fails the test, matching the
/// interpreted semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRange {
    /// Attribute index tested.
    pub attr: usize,
    /// Lower bound `(constant, strict)`; `None` means unbounded below.
    pub lo: Option<(Value, bool)>,
    /// Upper bound `(constant, strict)`; `None` means unbounded above.
    pub hi: Option<(Value, bool)>,
    /// Number of original predicates collapsed into this range.
    pub fused: u32,
}

impl FusedRange {
    /// Evaluates the interval test against one candidate event.
    pub fn eval(&self, ev: &Event) -> bool {
        let Some(v) = ev.attr(self.attr) else {
            return false;
        };
        if let Some((lo, strict)) = &self.lo {
            match v.partial_cmp_value(lo) {
                Some(Ordering::Greater) => {}
                Some(Ordering::Equal) if !*strict => {}
                _ => return false,
            }
        }
        if let Some((hi, strict)) = &self.hi {
            match v.partial_cmp_value(hi) {
                Some(Ordering::Less) => {}
                Some(Ordering::Equal) if !*strict => {}
                _ => return false,
            }
        }
        true
    }

    fn from_op(attr: usize, op: CmpOp, c: Value) -> Option<FusedRange> {
        let (lo, hi) = match op {
            CmpOp::Lt => (None, Some((c, true))),
            CmpOp::Le => (None, Some((c, false))),
            CmpOp::Eq => (Some((c.clone(), false)), Some((c, false))),
            CmpOp::Ge => (Some((c, false)), None),
            CmpOp::Gt => (Some((c, true)), None),
            CmpOp::Ne => return None,
        };
        Some(FusedRange {
            attr,
            lo,
            hi,
            fused: 1,
        })
    }

    fn bounds(&self) -> impl Iterator<Item = &Value> {
        self.lo
            .iter()
            .map(|(v, _)| v)
            .chain(self.hi.iter().map(|(v, _)| v))
    }
}

/// Picks the tighter of two optional lower bounds (greater constant wins;
/// on equal constants, strict wins). Call only when the constants compare.
fn tighter_lo(a: Option<(Value, bool)>, b: Option<(Value, bool)>) -> Option<(Value, bool)> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((x, xs)), Some((y, ys))) => match x.partial_cmp_value(&y) {
            Some(Ordering::Greater) => Some((x, xs)),
            Some(Ordering::Less) => Some((y, ys)),
            _ => Some((x, xs || ys)),
        },
    }
}

/// Picks the tighter of two optional upper bounds (smaller constant wins;
/// on equal constants, strict wins). Call only when the constants compare.
fn tighter_hi(a: Option<(Value, bool)>, b: Option<(Value, bool)>) -> Option<(Value, bool)> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((x, xs)), Some((y, ys))) => match x.partial_cmp_value(&y) {
            Some(Ordering::Less) => Some((x, xs)),
            Some(Ordering::Greater) => Some((y, ys)),
            _ => Some((x, xs || ys)),
        },
    }
}

/// One compiled unary evaluator: either a fused interval test or a general
/// comparison kept in residual form.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    /// Fused attribute interval test.
    Range(FusedRange),
    /// General comparison (attribute-vs-attribute, timestamp-involving, or
    /// `!=` — anything not range-expressible).
    General(CompiledUnary),
}

impl CompiledPredicate {
    /// Lowers a unary predicate whose referenced position is `position`.
    ///
    /// Attribute-vs-constant comparisons with a range-expressible operator
    /// become [`CompiledPredicate::Range`]; everything else stays
    /// [`CompiledPredicate::General`].
    pub fn compile(p: &Predicate, position: usize) -> CompiledPredicate {
        debug_assert!(
            p.position_pair() == (position, None),
            "filter must reference exactly the given position"
        );
        let as_range = match (&p.left, &p.right) {
            (Operand::Attr { attr, .. }, Operand::Const(c)) => {
                FusedRange::from_op(*attr, p.op, c.clone())
            }
            (Operand::Const(c), Operand::Attr { attr, .. }) => {
                FusedRange::from_op(*attr, p.op.flip(), c.clone())
            }
            _ => None,
        };
        match as_range {
            Some(r) => CompiledPredicate::Range(r),
            None => {
                let src = |o: &Operand| match o {
                    Operand::Attr { attr, .. } => Src::Attr(*attr),
                    Operand::Ts { .. } => Src::Ts,
                    Operand::Const(v) => Src::Const(v.clone()),
                };
                CompiledPredicate::General(CompiledUnary {
                    left: src(&p.left),
                    op: p.op,
                    right: src(&p.right),
                })
            }
        }
    }

    /// Evaluates against one candidate event.
    pub fn eval(&self, ev: &Event) -> bool {
        match self {
            CompiledPredicate::Range(r) => r.eval(ev),
            CompiledPredicate::General(g) => g.eval(ev),
        }
    }

    /// Whether `self` and `other` may be fused into a single evaluator.
    ///
    /// Requires both to be interval tests over the same attribute whose
    /// bound constants are mutually comparable (same comparability class —
    /// numeric, boolean, or string — and no `NaN`). Comparability makes
    /// dropping the looser of two same-side bounds exactly equivalent to
    /// testing both: any event value comparable to the tighter bound is,
    /// by class-transitivity, comparable to the dropped one.
    pub fn can_fuse_with(&self, other: &CompiledPredicate) -> bool {
        let (CompiledPredicate::Range(a), CompiledPredicate::Range(b)) = (self, other) else {
            return false;
        };
        a.attr == b.attr
            && a.bounds()
                .all(|x| b.bounds().all(|y| x.partial_cmp_value(y).is_some()))
    }

    /// Fuses two interval tests into one, keeping the tighter bound on each
    /// side. Returns `None` when [`CompiledPredicate::can_fuse_with`] does
    /// not hold.
    pub fn fuse_with(self, other: CompiledPredicate) -> Option<CompiledPredicate> {
        if !self.can_fuse_with(&other) {
            return None;
        }
        let (CompiledPredicate::Range(a), CompiledPredicate::Range(b)) = (self, other) else {
            unreachable!("can_fuse_with admitted only ranges");
        };
        Some(CompiledPredicate::Range(FusedRange {
            attr: a.attr,
            lo: tighter_lo(a.lo, b.lo),
            hi: tighter_hi(a.hi, b.hi),
            fused: a.fused + b.fused,
        }))
    }
}

/// A pre-resolved operand source for a pairwise evaluator over events
/// `(a, b)`.
#[derive(Debug, Clone, PartialEq)]
pub enum PairSrc {
    /// Attribute of event `a`.
    AAttr(usize),
    /// Timestamp of event `a`.
    ATs,
    /// Attribute of event `b`.
    BAttr(usize),
    /// Timestamp of event `b`.
    BTs,
    /// Literal constant.
    Const(Value),
}

impl PairSrc {
    fn resolve<'a>(&'a self, a: &'a Event, b: &'a Event) -> Resolved<'a> {
        match self {
            PairSrc::AAttr(i) => match a.attr(*i) {
                Some(v) => Resolved::Val(v),
                None => Resolved::Missing,
            },
            PairSrc::ATs => Resolved::Ts(a.ts as i64),
            PairSrc::BAttr(i) => match b.attr(*i) {
                Some(v) => Resolved::Val(v),
                None => Resolved::Missing,
            },
            PairSrc::BTs => Resolved::Ts(b.ts as i64),
            PairSrc::Const(v) => Resolved::Val(v),
        }
    }
}

/// A compiled pairwise evaluator: `left op right` over an event pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPair {
    /// Left operand source.
    pub left: PairSrc,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand source.
    pub right: PairSrc,
}

impl CompiledPair {
    /// Lowers a pairwise predicate for the ordered element pair whose
    /// pattern positions are `pos_a` (the `a` side) and `pos_b` (`b`).
    pub fn compile(p: &Predicate, pos_a: usize, pos_b: usize) -> CompiledPair {
        let src = |o: &Operand| match o {
            Operand::Attr { position, attr } if *position == pos_a => PairSrc::AAttr(*attr),
            Operand::Attr { position, attr } if *position == pos_b => PairSrc::BAttr(*attr),
            Operand::Ts { position } if *position == pos_a => PairSrc::ATs,
            Operand::Ts { position } if *position == pos_b => PairSrc::BTs,
            Operand::Const(v) => PairSrc::Const(v.clone()),
            other => unreachable!("pair predicate references foreign position {other:?}"),
        };
        CompiledPair {
            left: src(&p.left),
            op: p.op,
            right: src(&p.right),
        }
    }

    /// Evaluates against the ordered event pair `(a, b)`.
    pub fn eval(&self, a: &Event, b: &Event) -> bool {
        self.op.test(cmp_resolved(
            &self.left.resolve(a, b),
            &self.right.resolve(a, b),
        ))
    }
}

/// Per-type lookup entry: positive element indices plus whether the type
/// also appears negated (negated types must always be buffered).
#[derive(Debug, Clone)]
struct TypeEntry {
    elems: Vec<usize>,
    has_negated: bool,
}

/// The compiled evaluator set for one [`CompiledPattern`]: fused unary
/// filters per element and pairwise evaluators per ordered element pair.
///
/// Built once at plan-build time (directly or via [`PlanCache`]) and shared
/// by reference across engine instances; evaluation never re-walks the
/// predicate AST.
#[derive(Debug, Clone)]
pub struct PredicateProgram {
    /// Fused filters per positive element index.
    filters: Vec<Vec<CompiledPredicate>>,
    /// Pairwise evaluators per ordered element pair `[i][j]`, compiled with
    /// element `i` on the `a` side.
    pairs: Vec<Vec<Vec<CompiledPair>>>,
    /// Per-type entry for eager buffer pruning.
    by_type: HashMap<TypeId, TypeEntry>,
    /// Signature of the source pattern.
    signature: u64,
    /// Number of original filter predicates collapsed away by fusion.
    fused_away: u32,
}

impl PredicateProgram {
    /// Lowers a compiled pattern's predicate set into evaluator form.
    pub fn compile(cp: &CompiledPattern) -> PredicateProgram {
        let n = cp.n();
        let mut fused_away = 0u32;
        let mut filters: Vec<Vec<CompiledPredicate>> = Vec::with_capacity(n);
        for i in 0..n {
            let pos = cp.elements[i].position;
            let mut list: Vec<CompiledPredicate> = Vec::new();
            for &pi in cp.filters_of(i) {
                let next = CompiledPredicate::compile(&cp.predicates[pi], pos);
                match list.iter().position(|slot| slot.can_fuse_with(&next)) {
                    Some(at) => {
                        list[at] = list[at]
                            .clone()
                            .fuse_with(next)
                            .expect("can_fuse_with admitted the pair");
                        fused_away += 1;
                    }
                    None => list.push(next),
                }
            }
            filters.push(list);
        }

        let mut pairs: Vec<Vec<Vec<CompiledPair>>> = vec![vec![Vec::new(); n]; n];
        for (i, row) in pairs.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let pos_i = cp.elements[i].position;
                let pos_j = cp.elements[j].position;
                for &pi in cp.predicates_between(i, j) {
                    cell.push(CompiledPair::compile(&cp.predicates[pi], pos_i, pos_j));
                }
            }
        }

        let mut by_type: HashMap<TypeId, TypeEntry> = HashMap::new();
        for (i, e) in cp.elements.iter().enumerate() {
            by_type
                .entry(e.event_type)
                .or_insert_with(|| TypeEntry {
                    elems: Vec::new(),
                    has_negated: false,
                })
                .elems
                .push(i);
        }
        for ne in &cp.negated {
            by_type
                .entry(ne.event_type)
                .or_insert_with(|| TypeEntry {
                    elems: Vec::new(),
                    has_negated: true,
                })
                .has_negated = true;
        }

        PredicateProgram {
            filters,
            pairs,
            by_type,
            signature: cp.signature(),
            fused_away,
        }
    }

    /// Whether `ev` passes every (fused) filter of element `elem`.
    /// Each evaluator invocation increments `evals`.
    pub fn element_passes(&self, elem: usize, ev: &Event, evals: &mut u64) -> bool {
        for f in &self.filters[elem] {
            *evals += 1;
            if !f.eval(ev) {
                return false;
            }
        }
        true
    }

    /// Compiled pairwise evaluators for the ordered element pair `(i, j)`,
    /// with element `i`'s event passed as the `a` argument.
    pub fn pairs_between(&self, i: usize, j: usize) -> &[CompiledPair] {
        &self.pairs[i][j]
    }

    /// Whether `ev` could ever bind anywhere in the pattern: it either has a
    /// type with negated elements (always relevant) or passes the filters of
    /// at least one positive element of its type. Events failing this can be
    /// dropped before buffering (eager pruning) without changing the match
    /// set, because [`element_passes`](Self::element_passes) would reject
    /// them at every bind attempt.
    pub fn can_ever_bind(&self, ev: &Event, evals: &mut u64) -> bool {
        match self.by_type.get(&ev.type_id) {
            None => false,
            Some(entry) => {
                entry.has_negated
                    || entry
                        .elems
                        .iter()
                        .any(|&i| self.element_passes(i, ev, evals))
            }
        }
    }

    /// Signature of the pattern this program was compiled from.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Number of original filter predicates collapsed away by fusion.
    pub fn fused_predicates(&self) -> u32 {
        self.fused_away
    }

    /// Compiled filters of one element (inspection / tests).
    pub fn filters_of(&self, elem: usize) -> &[CompiledPredicate] {
        &self.filters[elem]
    }
}

/// A bounded, signature-keyed cache of compiled [`PredicateProgram`]s.
///
/// Keys are [`CompiledPattern::signature`] values, so a replan or factory
/// build that lands on a previously seen pattern (same structure, predicate
/// set, window, and strategy) reuses the compiled program instead of
/// lowering it again. Eviction is FIFO by first insertion. Every lookup can
/// be traced as a [`TraceRecord::PlanCacheLookup`].
#[derive(Debug)]
pub struct PlanCache {
    map: HashMap<u64, Arc<PredicateProgram>>,
    fifo: VecDeque<u64>,
    cap: usize,
    hits: u64,
    misses: u64,
    tracer: Tracer,
}

impl PlanCache {
    /// Creates a cache holding at most `cap` compiled programs.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> PlanCache {
        assert!(cap >= 1, "PlanCache capacity must be >= 1");
        PlanCache {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            cap,
            hits: 0,
            misses: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; every subsequent lookup emits a
    /// `PlanCacheLookup` record.
    pub fn with_tracer(mut self, tracer: Tracer) -> PlanCache {
        self.tracer = tracer;
        self
    }

    /// Returns the compiled program for `cp`, compiling and caching it on a
    /// miss.
    pub fn get_or_compile(&mut self, cp: &CompiledPattern) -> Arc<PredicateProgram> {
        let signature = cp.signature();
        let (program, hit) = match self.map.get(&signature) {
            Some(p) => (p.clone(), true),
            None => {
                let p = Arc::new(PredicateProgram::compile(cp));
                if self.map.len() >= self.cap {
                    if let Some(old) = self.fifo.pop_front() {
                        self.map.remove(&old);
                    }
                }
                self.map.insert(signature, p.clone());
                self.fifo.push_back(signature);
                (p, false)
            }
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        let size = self.map.len() as u64;
        self.tracer.emit_with(|| TraceRecord::PlanCacheLookup {
            signature,
            hit,
            size,
        });
        program
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A plan cache shared across threads (factories are `Send + Sync`).
pub type SharedPlanCache = Arc<Mutex<PlanCache>>;

/// Creates a [`SharedPlanCache`] with the given capacity.
pub fn shared_plan_cache(cap: usize) -> SharedPlanCache {
    Arc::new(Mutex::new(PlanCache::new(cap)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use crate::selection::SelectionStrategy;
    use std::sync::Arc as StdArc;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn ev_x(x: i64) -> Event {
        Event::new(t(0), 5, vec![Value::Int(x)])
    }

    fn filter_pattern(preds: Vec<Predicate>) -> CompiledPattern {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        for p in preds {
            b.predicate(p);
        }
        let _ = a;
        let _ = c;
        CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
    }

    #[test]
    fn interval_filters_fuse_to_one_range() {
        let cp = filter_pattern(vec![
            Predicate::attr_const(0, 0, CmpOp::Ge, Value::Int(3)),
            Predicate::attr_const(0, 0, CmpOp::Lt, Value::Int(10)),
            Predicate::attr_const(0, 0, CmpOp::Gt, Value::Int(1)),
        ]);
        let prog = PredicateProgram::compile(&cp);
        assert_eq!(prog.filters_of(0).len(), 1, "three filters fused into one");
        assert_eq!(prog.fused_predicates(), 2);
        let CompiledPredicate::Range(r) = &prog.filters_of(0)[0] else {
            panic!("expected fused range");
        };
        assert_eq!(r.lo, Some((Value::Int(3), false)), "Ge 3 beats Gt 1");
        assert_eq!(r.hi, Some((Value::Int(10), true)));
        assert_eq!(r.fused, 3);
        let mut evals = 0u64;
        assert!(prog.element_passes(0, &ev_x(3), &mut evals));
        assert!(prog.element_passes(0, &ev_x(9), &mut evals));
        assert!(!prog.element_passes(0, &ev_x(2), &mut evals));
        assert!(!prog.element_passes(0, &ev_x(10), &mut evals));
        assert_eq!(evals, 4, "one evaluator invocation per event");
    }

    #[test]
    fn equal_constants_tie_break_to_strict() {
        let cp = filter_pattern(vec![
            Predicate::attr_const(0, 0, CmpOp::Gt, Value::Int(3)),
            Predicate::attr_const(0, 0, CmpOp::Ge, Value::Int(3)),
        ]);
        let prog = PredicateProgram::compile(&cp);
        let CompiledPredicate::Range(r) = &prog.filters_of(0)[0] else {
            panic!("expected fused range");
        };
        assert_eq!(r.lo, Some((Value::Int(3), true)), "x>3 AND x>=3 is x>3");
    }

    #[test]
    fn eq_becomes_point_range_and_contradictions_reject_everything() {
        let cp = filter_pattern(vec![
            Predicate::attr_const(0, 0, CmpOp::Eq, Value::Int(5)),
            Predicate::attr_const(0, 0, CmpOp::Eq, Value::Int(7)),
        ]);
        let prog = PredicateProgram::compile(&cp);
        assert_eq!(prog.filters_of(0).len(), 1);
        let mut evals = 0u64;
        for x in [4, 5, 6, 7, 8] {
            assert!(!prog.element_passes(0, &ev_x(x), &mut evals));
        }
    }

    #[test]
    fn ne_stays_general_and_matches_interpreted_semantics() {
        let p = Predicate::attr_const(0, 0, CmpOp::Ne, Value::Int(5));
        let c = CompiledPredicate::compile(&p, 0);
        assert!(matches!(c, CompiledPredicate::General(_)));
        assert!(c.eval(&ev_x(4)));
        assert!(!c.eval(&ev_x(5)));
        // Ne on an incomparable value fails, like the interpreted path.
        let s = Event::new(t(0), 0, vec![Value::from("s")]);
        assert!(!c.eval(&s));
        assert_eq!(p.eval_single(0, &s), c.eval(&s));
    }

    #[test]
    fn incomparable_constants_refuse_fusion() {
        let a =
            CompiledPredicate::compile(&Predicate::attr_const(0, 0, CmpOp::Ge, Value::Int(3)), 0);
        let b = CompiledPredicate::compile(
            &Predicate::attr_const(0, 0, CmpOp::Le, Value::from("zz")),
            0,
        );
        assert!(!a.can_fuse_with(&b));
        let nan = CompiledPredicate::compile(
            &Predicate::attr_const(0, 0, CmpOp::Le, Value::Float(f64::NAN)),
            0,
        );
        assert!(!a.can_fuse_with(&nan), "NaN bounds never fuse");
        // Different attributes never fuse either.
        let other_attr =
            CompiledPredicate::compile(&Predicate::attr_const(0, 1, CmpOp::Le, Value::Int(9)), 0);
        assert!(!a.can_fuse_with(&other_attr));
    }

    #[test]
    fn const_on_left_flips_into_range() {
        let p = Predicate {
            left: Operand::Const(Value::Int(3)),
            op: CmpOp::Lt,
            right: Operand::Attr {
                position: 0,
                attr: 0,
            },
        };
        let c = CompiledPredicate::compile(&p, 0);
        let CompiledPredicate::Range(r) = &c else {
            panic!("expected range");
        };
        assert_eq!(r.lo, Some((Value::Int(3), true)), "3 < x means x > 3");
        assert!(c.eval(&ev_x(4)));
        assert!(!c.eval(&ev_x(3)));
    }

    #[test]
    fn compiled_pair_matches_interpreted_on_grid() {
        let ops = [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ];
        for op in ops {
            let p = Predicate::attr_cmp(0, 0, op, 1, 0);
            let c = CompiledPair::compile(&p, 0, 1);
            for x in -2..=2i64 {
                for y in -2..=2i64 {
                    let a = ev_x(x);
                    let b = ev_x(y);
                    assert_eq!(
                        p.eval_pair(0, &a, 1, &b),
                        c.eval(&a, &b),
                        "op {op:?} x {x} y {y}"
                    );
                }
            }
        }
        // Timestamp operands.
        let p = Predicate::ts_before(0, 1);
        let c = CompiledPair::compile(&p, 0, 1);
        let mk = |ts| Event::new(t(0), ts, vec![]);
        assert_eq!(p.eval_pair(0, &mk(3), 1, &mk(5)), c.eval(&mk(3), &mk(5)));
        assert_eq!(p.eval_pair(0, &mk(5), 1, &mk(5)), c.eval(&mk(5), &mk(5)));
    }

    #[test]
    fn missing_attribute_fails_compiled_like_interpreted() {
        let p = Predicate::attr_const(0, 3, CmpOp::Ge, Value::Int(0));
        let c = CompiledPredicate::compile(&p, 0);
        let e = ev_x(1); // only attr 0 exists
        assert!(!c.eval(&e));
        assert_eq!(p.eval_single(0, &e), c.eval(&e));
    }

    #[test]
    fn program_respects_pair_orientation() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let prog = PredicateProgram::compile(&cp);
        assert_eq!(prog.pairs_between(0, 1).len(), 1);
        assert_eq!(prog.pairs_between(1, 0).len(), 1);
        let small = ev_x(1);
        let big = ev_x(9);
        // a.x < c.x: (a=small, c=big) passes from both orientations.
        assert!(prog.pairs_between(0, 1)[0].eval(&small, &big));
        assert!(prog.pairs_between(1, 0)[0].eval(&big, &small));
        assert!(!prog.pairs_between(0, 1)[0].eval(&big, &small));
    }

    #[test]
    fn can_ever_bind_prunes_only_filter_rejected_types() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_const(a.pos(), 0, CmpOp::Ge, Value::Int(10)));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let prog = PredicateProgram::compile(&cp);
        let mut evals = 0;
        assert!(prog.can_ever_bind(&Event::new(t(0), 0, vec![Value::Int(10)]), &mut evals));
        assert!(!prog.can_ever_bind(&Event::new(t(0), 0, vec![Value::Int(9)]), &mut evals));
        // Type 1 has no filters: always bindable.
        assert!(prog.can_ever_bind(&Event::new(t(1), 0, vec![]), &mut evals));
        // Unused type.
        assert!(!prog.can_ever_bind(&Event::new(t(9), 0, vec![]), &mut evals));
    }

    #[test]
    fn negated_types_always_buffered() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_const(
            nb.pos(),
            0,
            CmpOp::Ge,
            Value::Int(100),
        ));
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let prog = PredicateProgram::compile(&cp);
        let mut evals = 0;
        // Negated type events must never be pruned, even filter-failing ones.
        assert!(prog.can_ever_bind(&Event::new(t(1), 0, vec![Value::Int(0)]), &mut evals));
    }

    #[test]
    fn cache_hits_on_identical_pattern_and_evicts_fifo() {
        let mk = |tid: u32, window: u64| {
            let mut b = PatternBuilder::new(window);
            let a = b.event(t(tid), "a");
            let c = b.event(t(tid + 1), "c");
            CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
        };
        let mut cache = PlanCache::new(2);
        let p1 = cache.get_or_compile(&mk(0, 100));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let p1b = cache.get_or_compile(&mk(0, 100));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(StdArc::ptr_eq(&p1, &p1b), "hit returns the same program");
        cache.get_or_compile(&mk(2, 100));
        cache.get_or_compile(&mk(4, 100)); // evicts mk(0, 100)
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(&mk(0, 100));
        assert_eq!(cache.misses(), 4, "evicted entry recompiles");
    }

    #[test]
    fn cache_lookup_emits_trace_records() {
        use cep_obs::{RingSink, TraceRecord, Tracer};
        let ring = StdArc::new(RingSink::new(8));
        let tracer = Tracer::to_sink(ring.clone());
        let mut cache = PlanCache::new(4).with_tracer(tracer);
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        cache.get_or_compile(&cp);
        cache.get_or_compile(&cp);
        let recs = ring.snapshot();
        assert_eq!(recs.len(), 2);
        let TraceRecord::PlanCacheLookup {
            hit: h0,
            size: s0,
            signature: g0,
        } = &recs[0]
        else {
            panic!("expected PlanCacheLookup");
        };
        let TraceRecord::PlanCacheLookup {
            hit: h1,
            signature: g1,
            ..
        } = &recs[1]
        else {
            panic!("expected PlanCacheLookup");
        };
        assert!(!h0 && *s0 == 1);
        assert!(*h1);
        assert_eq!(g0, g1);
        assert_eq!(*g0, cp.signature());
    }

    #[test]
    fn signatures_distinguish_structure_predicates_window_strategy() {
        let base = |f: &dyn Fn(&mut PatternBuilder)| {
            let mut b = PatternBuilder::new(100);
            f(&mut b);
            let a = b.event(t(0), "a");
            let c = b.event(t(1), "c");
            CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
        };
        let plain = base(&|_| {});
        let plain2 = base(&|_| {});
        assert_eq!(plain.signature(), plain2.signature(), "deterministic");
        let strat = base(&|b| {
            b.strategy(SelectionStrategy::SkipTillNextMatch);
        });
        assert_ne!(plain.signature(), strat.signature());
        let with_pred = base(&|b| {
            b.predicate(Predicate::attr_const(0, 0, CmpOp::Ge, Value::Int(1)));
        });
        assert_ne!(plain.signature(), with_pred.signature());
        let mut bw = PatternBuilder::new(200);
        let a = bw.event(t(0), "a");
        let c = bw.event(t(1), "c");
        let windowed = CompiledPattern::compile_single(&bw.seq([a, c]).unwrap()).unwrap();
        assert_ne!(plain.signature(), windowed.signature());
    }
}
