//! Source locations for parse errors and analyzer diagnostics.

use std::fmt;

/// A position in a source text: byte offset plus 1-based line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset into the source text.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes from the line start).
    pub column: u32,
}

impl Span {
    /// Computes the line/column of byte `offset` within `input`.
    ///
    /// Offsets past the end of `input` clamp to the final position.
    /// Query texts are small, so the linear scan is not a concern.
    pub fn locate(input: &str, offset: usize) -> Span {
        let offset = offset.min(input.len());
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, b) in input.bytes().enumerate().take(offset) {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        Span {
            offset,
            line,
            column: (offset - line_start) as u32 + 1,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locates_on_first_line() {
        let s = Span::locate("abc def", 4);
        assert_eq!(
            s,
            Span {
                offset: 4,
                line: 1,
                column: 5
            }
        );
    }

    #[test]
    fn locates_across_newlines() {
        let s = Span::locate("ab\ncd\nef", 6);
        assert_eq!(
            s,
            Span {
                offset: 6,
                line: 3,
                column: 1
            }
        );
        let s = Span::locate("ab\ncd\nef", 4);
        assert_eq!(s.line, 2);
        assert_eq!(s.column, 2);
    }

    #[test]
    fn clamps_past_end() {
        let s = Span::locate("ab", 10);
        assert_eq!(s.offset, 2);
        assert_eq!(s.column, 3);
    }

    #[test]
    fn displays_line_and_column() {
        let s = Span::locate("x", 0);
        assert_eq!(s.to_string(), "line 1, column 1");
    }
}
