//! CEP pattern language (Section 2.1 of the paper).
//!
//! A [`Pattern`] combines an operator tree over primitive events
//! ([`PatternExpr`]), a conjunction of pairwise [`Predicate`]s, a time
//! window, and a [`SelectionStrategy`]. Following the paper's taxonomy:
//!
//! * **simple** patterns have a single n-ary operator and at most one unary
//!   operator (`NOT`/`KL`) per primitive event;
//! * **pure** patterns contain no unary operators;
//! * **nested** patterns may combine several n-ary operators (e.g., a
//!   disjunction of sequences) and are handled by DNF decomposition
//!   (Section 5.4, implemented in [`crate::compile`]).

use crate::error::CepError;
use crate::event::TypeId;
use crate::predicate::Predicate;
use crate::selection::SelectionStrategy;
use std::collections::HashSet;
use std::fmt;

/// Operator tree of a pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternExpr {
    /// A primitive event to be matched.
    Event {
        /// Unique position of this primitive event within the pattern;
        /// predicates reference events by position.
        position: usize,
        /// The event type accepted at this position.
        event_type: TypeId,
        /// Variable name from the specification (e.g. `a` in `A a`).
        name: String,
    },
    /// Negation: the wrapped primitive event must *not* occur (Section 5.3).
    Not(Box<PatternExpr>),
    /// Kleene closure: one or more occurrences of the wrapped primitive
    /// event (Section 5.2).
    Kleene(Box<PatternExpr>),
    /// Temporally ordered conjunction.
    Seq(Vec<PatternExpr>),
    /// Unordered conjunction.
    And(Vec<PatternExpr>),
    /// Disjunction.
    Or(Vec<PatternExpr>),
}

impl PatternExpr {
    /// The position of this node if it is a primitive event (possibly
    /// wrapped in a unary operator).
    pub fn position(&self) -> Option<usize> {
        match self {
            PatternExpr::Event { position, .. } => Some(*position),
            PatternExpr::Not(inner) | PatternExpr::Kleene(inner) => inner.position(),
            _ => None,
        }
    }

    /// Whether this node is a primitive event, possibly under a unary
    /// operator.
    pub fn is_primitive(&self) -> bool {
        match self {
            PatternExpr::Event { .. } => true,
            PatternExpr::Not(inner) | PatternExpr::Kleene(inner) => {
                matches!(**inner, PatternExpr::Event { .. })
            }
            _ => false,
        }
    }

    /// Collects `(position, event_type, negated, kleene)` for every primitive
    /// event in the expression, in specification order.
    pub fn primitives(&self) -> Vec<PrimitiveInfo> {
        let mut out = Vec::new();
        self.collect(&mut out, false, false);
        out
    }

    fn collect(&self, out: &mut Vec<PrimitiveInfo>, negated: bool, kleene: bool) {
        match self {
            PatternExpr::Event {
                position,
                event_type,
                name,
            } => out.push(PrimitiveInfo {
                position: *position,
                event_type: *event_type,
                name: name.clone(),
                negated,
                kleene,
            }),
            PatternExpr::Not(inner) => inner.collect(out, true, kleene),
            PatternExpr::Kleene(inner) => inner.collect(out, negated, true),
            PatternExpr::Seq(children) | PatternExpr::And(children) | PatternExpr::Or(children) => {
                for c in children {
                    c.collect(out, negated, kleene);
                }
            }
        }
    }

    /// Whether the expression contains an `OR` operator.
    pub fn contains_or(&self) -> bool {
        match self {
            PatternExpr::Or(_) => true,
            PatternExpr::Event { .. } => false,
            PatternExpr::Not(i) | PatternExpr::Kleene(i) => i.contains_or(),
            PatternExpr::Seq(cs) | PatternExpr::And(cs) => cs.iter().any(|c| c.contains_or()),
        }
    }

    fn validate(&self, seen: &mut HashSet<usize>) -> Result<(), CepError> {
        match self {
            PatternExpr::Event { position, .. } => {
                if !seen.insert(*position) {
                    return Err(CepError::Pattern(format!(
                        "position {position} used more than once"
                    )));
                }
                Ok(())
            }
            PatternExpr::Not(inner) => match **inner {
                PatternExpr::Event { .. } => inner.validate(seen),
                _ => Err(CepError::Pattern(
                    "NOT may only be applied to a primitive event".into(),
                )),
            },
            PatternExpr::Kleene(inner) => match **inner {
                PatternExpr::Event { .. } => inner.validate(seen),
                _ => Err(CepError::Pattern(
                    "KL may only be applied to a primitive event".into(),
                )),
            },
            PatternExpr::Seq(children) | PatternExpr::And(children) | PatternExpr::Or(children) => {
                if children.is_empty() {
                    return Err(CepError::Pattern("n-ary operator with no operands".into()));
                }
                for c in children {
                    c.validate(seen)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for PatternExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, op: &str, cs: &[PatternExpr]) -> fmt::Result {
            write!(f, "{op}(")?;
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
            f.write_str(")")
        }
        match self {
            PatternExpr::Event { position, name, .. } => write!(f, "{name}#{position}"),
            PatternExpr::Not(i) => write!(f, "NOT({i})"),
            PatternExpr::Kleene(i) => write!(f, "KL({i})"),
            PatternExpr::Seq(cs) => list(f, "SEQ", cs),
            PatternExpr::And(cs) => list(f, "AND", cs),
            PatternExpr::Or(cs) => list(f, "OR", cs),
        }
    }
}

/// Summary of one primitive event occurrence inside a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveInfo {
    /// Unique pattern position.
    pub position: usize,
    /// Accepted event type.
    pub event_type: TypeId,
    /// Variable name.
    pub name: String,
    /// Wrapped in `NOT`.
    pub negated: bool,
    /// Wrapped in `KL`.
    pub kleene: bool,
}

/// A complete pattern specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Operator tree.
    pub expr: PatternExpr,
    /// Conjunction of pairwise predicates (the `WHERE` clause).
    pub predicates: Vec<Predicate>,
    /// Time window `W` in milliseconds (the `WITHIN` clause): the maximal
    /// allowed timestamp difference between any two events of a match.
    pub window: u64,
    /// Event selection strategy.
    pub strategy: SelectionStrategy,
}

impl Pattern {
    /// Validates pattern structure and predicate references.
    pub fn validate(&self) -> Result<(), CepError> {
        if self.window == 0 {
            return Err(CepError::Pattern("time window must be positive".into()));
        }
        let mut seen = HashSet::new();
        self.expr.validate(&mut seen)?;
        for p in &self.predicates {
            let (a, b) = p.position_pair();
            if a != usize::MAX && !seen.contains(&a) {
                return Err(CepError::Pattern(format!(
                    "predicate {p} references unknown position {a}"
                )));
            }
            if let Some(b) = b {
                if !seen.contains(&b) {
                    return Err(CepError::Pattern(format!(
                        "predicate {p} references unknown position {b}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// All primitive events of the pattern, in specification order.
    pub fn primitives(&self) -> Vec<PrimitiveInfo> {
        self.expr.primitives()
    }

    /// Number of primitive events (the paper's "pattern size").
    pub fn size(&self) -> usize {
        self.primitives().len()
    }

    /// Whether the pattern is *simple*: a single n-ary operator over
    /// (possibly unary-wrapped) primitive events.
    pub fn is_simple(&self) -> bool {
        match &self.expr {
            PatternExpr::Seq(cs) | PatternExpr::And(cs) | PatternExpr::Or(cs) => {
                cs.iter().all(|c| c.is_primitive())
            }
            e => e.is_primitive(),
        }
    }

    /// Whether the pattern is *pure*: simple and without unary operators.
    pub fn is_pure(&self) -> bool {
        self.is_simple() && self.primitives().iter().all(|p| !p.negated && !p.kleene)
    }

    /// Predicates that reference position `pos`.
    pub fn predicates_on(&self, pos: usize) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(move |p| p.references(pos))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PATTERN {}", self.expr)?;
        if !self.predicates.is_empty() {
            f.write_str(" WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, " WITHIN {}", self.window)
    }
}

/// Handle to a primitive event allocated by [`PatternBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ev {
    /// Pattern position of this event.
    pub position: usize,
    /// Event type accepted at the position.
    pub event_type: TypeId,
}

impl Ev {
    /// The position, for use in [`Predicate`] constructors.
    pub fn pos(self) -> usize {
        self.position
    }
}

/// Incremental pattern construction with automatic position assignment.
///
/// ```
/// use cep_core::pattern::{PatternBuilder, PatternExpr};
/// use cep_core::predicate::{CmpOp, Predicate};
/// use cep_core::event::TypeId;
///
/// let mut b = PatternBuilder::new(20 * 60 * 1000); // 20-minute window
/// let m = b.event(TypeId(0), "m");
/// let g = b.event(TypeId(1), "g");
/// let i = b.event(TypeId(2), "i");
/// b.predicate(Predicate::attr_cmp(m.pos(), 1, CmpOp::Lt, g.pos(), 1));
/// let pattern = b.and([m, g, i]).unwrap();
/// assert!(pattern.is_pure());
/// ```
#[derive(Debug)]
pub struct PatternBuilder {
    next_position: usize,
    names: Vec<String>,
    predicates: Vec<Predicate>,
    window: u64,
    strategy: SelectionStrategy,
}

impl PatternBuilder {
    /// Starts a pattern with the given time window (ms).
    pub fn new(window: u64) -> Self {
        PatternBuilder {
            next_position: 0,
            names: Vec::new(),
            predicates: Vec::new(),
            window,
            strategy: SelectionStrategy::default(),
        }
    }

    /// Sets the selection strategy (default: skip-till-any-match).
    pub fn strategy(&mut self, strategy: SelectionStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Allocates a primitive event with a fresh position.
    pub fn event(&mut self, event_type: TypeId, name: &str) -> Ev {
        let position = self.next_position;
        self.next_position += 1;
        self.names.push(name.to_owned());
        Ev {
            position,
            event_type,
        }
    }

    /// Adds a predicate to the `WHERE` conjunction.
    pub fn predicate(&mut self, p: Predicate) -> &mut Self {
        self.predicates.push(p);
        self
    }

    /// Expression node for a plain event handle.
    pub fn expr(&self, ev: Ev) -> PatternExpr {
        PatternExpr::Event {
            position: ev.position,
            event_type: ev.event_type,
            name: self.names[ev.position].clone(),
        }
    }

    /// Expression node negating an event.
    pub fn not(&self, ev: Ev) -> PatternExpr {
        PatternExpr::Not(Box::new(self.expr(ev)))
    }

    /// Expression node applying Kleene closure to an event.
    pub fn kleene(&self, ev: Ev) -> PatternExpr {
        PatternExpr::Kleene(Box::new(self.expr(ev)))
    }

    /// Finishes the pattern with an arbitrary expression tree.
    pub fn finish(self, expr: PatternExpr) -> Result<Pattern, CepError> {
        let p = Pattern {
            expr,
            predicates: self.predicates,
            window: self.window,
            strategy: self.strategy,
        };
        p.validate()?;
        Ok(p)
    }

    /// Finishes as `SEQ` over plain event handles.
    pub fn seq(self, events: impl IntoIterator<Item = Ev>) -> Result<Pattern, CepError> {
        let children: Vec<_> = events.into_iter().map(|e| self.expr(e)).collect();
        self.finish(PatternExpr::Seq(children))
    }

    /// Finishes as `SEQ` over arbitrary expression nodes (for `NOT`/`KL`).
    pub fn seq_exprs(
        self,
        children: impl IntoIterator<Item = PatternExpr>,
    ) -> Result<Pattern, CepError> {
        self.finish(PatternExpr::Seq(children.into_iter().collect()))
    }

    /// Finishes as `AND` over plain event handles.
    pub fn and(self, events: impl IntoIterator<Item = Ev>) -> Result<Pattern, CepError> {
        let children: Vec<_> = events.into_iter().map(|e| self.expr(e)).collect();
        self.finish(PatternExpr::And(children))
    }

    /// Finishes as `AND` over arbitrary expression nodes.
    pub fn and_exprs(
        self,
        children: impl IntoIterator<Item = PatternExpr>,
    ) -> Result<Pattern, CepError> {
        self.finish(PatternExpr::And(children.into_iter().collect()))
    }

    /// Finishes as `OR` over arbitrary expression nodes.
    pub fn or_exprs(
        self,
        children: impl IntoIterator<Item = PatternExpr>,
    ) -> Result<Pattern, CepError> {
        self.finish(PatternExpr::Or(children.into_iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    #[test]
    fn builder_assigns_positions() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        assert_eq!(a.pos(), 0);
        assert_eq!(c.pos(), 1);
        let p = b.seq([a, c]).unwrap();
        assert_eq!(p.size(), 2);
        assert!(p.is_pure());
        assert!(p.is_simple());
    }

    #[test]
    fn negation_and_kleene_classification() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let n = b.event(t(1), "n");
        let k = b.event(t(2), "k");
        let a_e = b.expr(a);
        let n_e = b.not(n);
        let k_e = b.kleene(k);
        let p = b.seq_exprs([a_e, n_e, k_e]).unwrap();
        assert!(p.is_simple());
        assert!(!p.is_pure());
        let prims = p.primitives();
        assert!(prims[1].negated && !prims[1].kleene);
        assert!(prims[2].kleene && !prims[2].negated);
    }

    #[test]
    fn nested_pattern_detection() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        let a_e = b.expr(a);
        let or = PatternExpr::Or(vec![b.expr(c), b.expr(d)]);
        let p = b.and_exprs([a_e, or]).unwrap();
        assert!(!p.is_simple());
        assert!(p.expr.contains_or());
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn predicate_reference_validation() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, 7, 0));
        assert!(b.seq([a, c]).is_err());
    }

    #[test]
    fn not_over_composite_rejected() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let inner = PatternExpr::And(vec![b.expr(a), b.expr(c)]);
        assert!(b.finish(PatternExpr::Not(Box::new(inner))).is_err());
    }

    #[test]
    fn zero_window_rejected() {
        let mut b = PatternBuilder::new(0);
        let a = b.event(t(0), "a");
        assert!(b.seq([a]).is_err());
    }

    #[test]
    fn empty_nary_rejected() {
        let b = PatternBuilder::new(10);
        assert!(b.finish(PatternExpr::Seq(vec![])).is_err());
    }

    #[test]
    fn duplicate_position_rejected() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let e1 = b.expr(a);
        let e2 = b.expr(a);
        assert!(b.finish(PatternExpr::And(vec![e1, e2])).is_err());
    }

    #[test]
    fn display_roundtrip_shape() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let p = b.seq([a, c]).unwrap();
        let s = p.to_string();
        assert!(s.contains("SEQ"));
        assert!(s.contains("WITHIN 10"));
        assert!(s.contains("WHERE"));
    }

    #[test]
    fn predicates_on_filters_by_position() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        b.predicate(Predicate::attr_cmp(c.pos(), 0, CmpOp::Lt, d.pos(), 0));
        let p = b.seq([a, c, d]).unwrap();
        assert_eq!(p.predicates_on(0).count(), 1);
        assert_eq!(p.predicates_on(1).count(), 2);
    }
}
