//! Query graphs and topology detection (Section 4.3).
//!
//! The query graph of a pattern has one vertex per positive element and an
//! edge wherever a *real* predicate links two elements (temporal-order
//! constraints from the SEQ→AND rewrite are not edges: they exist between
//! every pair and carry no structure). Topology classes matter because the
//! paper cites polynomial-time JQPG algorithms for acyclic graphs (IK/KBZ,
//! applicable thanks to the ASI property proven in Appendix A) and notes
//! empirical results for stars and chains.

use crate::stats::PatternStats;

/// Topology class of a query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// No edges at all (pure cross product).
    EdgeFree,
    /// Connected, acyclic, every vertex degree <= 2 (a path).
    Chain,
    /// Connected, acyclic, one center adjacent to all others.
    Star,
    /// Connected and acyclic, but neither chain nor star.
    Tree,
    /// Acyclic but disconnected (a forest with >= 2 components with edges,
    /// or isolated vertices plus edges).
    Forest,
    /// Every pair of vertices is linked.
    Clique,
    /// Contains a cycle but is not a clique.
    Cyclic,
}

/// Undirected query graph over pattern elements.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    n: usize,
    adj: Vec<Vec<bool>>,
}

impl QueryGraph {
    /// Builds the graph from pattern statistics using the explicit-predicate
    /// edges.
    pub fn from_stats(stats: &PatternStats) -> QueryGraph {
        let n = stats.n();
        let adj = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| i != j && stats.explicit_pair[i][j])
                    .collect()
            })
            .collect();
        QueryGraph { n, adj }
    }

    /// Builds a graph from an explicit edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> QueryGraph {
        let mut adj = vec![vec![false; n]; n];
        for &(a, b) in edges {
            assert!(a < n && b < n && a != b, "invalid edge ({a},{b})");
            adj[a][b] = true;
            adj[b][a] = true;
        }
        QueryGraph { n, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether vertices `i` and `j` are adjacent.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i][j]
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].iter().filter(|&&b| b).count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).sum::<usize>() / 2
    }

    /// Neighbours of vertex `i`.
    pub fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[i]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(j, _)| j)
    }

    /// Connected components (vertex lists).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            let mut comp = vec![s];
            seen[s] = true;
            let mut stack = vec![s];
            while let Some(v) = stack.pop() {
                for u in self.neighbours(v) {
                    if !seen[u] {
                        seen[u] = true;
                        comp.push(u);
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Whether the graph contains a cycle.
    pub fn is_cyclic(&self) -> bool {
        // A forest has exactly n - #components edges.
        self.edge_count() > self.n - self.components().len()
    }

    /// Whether the graph is connected and acyclic.
    pub fn is_tree(&self) -> bool {
        self.components().len() == 1 && !self.is_cyclic()
    }

    /// Whether the graph is acyclic (possibly disconnected).
    pub fn is_forest(&self) -> bool {
        !self.is_cyclic()
    }

    /// Classifies the topology (Section 4.3 query types).
    pub fn topology(&self) -> Topology {
        let m = self.edge_count();
        if m == 0 {
            return Topology::EdgeFree;
        }
        if self.n >= 3 && m == self.n * (self.n - 1) / 2 {
            return Topology::Clique;
        }
        if self.is_cyclic() {
            return Topology::Cyclic;
        }
        if self.components().len() > 1 {
            return Topology::Forest;
        }
        // Connected tree: chain / star / general tree.
        let max_deg = (0..self.n).map(|i| self.degree(i)).max().unwrap_or(0);
        if max_deg <= 2 {
            return Topology::Chain;
        }
        if (0..self.n).any(|c| self.degree(c) == self.n - 1) {
            return Topology::Star;
        }
        Topology::Tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_detection() {
        let g = QueryGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.topology(), Topology::Chain);
        assert!(g.is_tree());
        assert!(!g.is_cyclic());
    }

    #[test]
    fn star_detection() {
        let g = QueryGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.topology(), Topology::Star);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn general_tree_detection() {
        // A "broom": path 0-1-2 with extra leaves 3,4 on vertex 2 and 5 on 1.
        let g = QueryGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (2, 4), (1, 5)]);
        assert_eq!(g.topology(), Topology::Tree);
    }

    #[test]
    fn clique_and_cycle_detection() {
        let clique = QueryGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(clique.topology(), Topology::Clique);
        let cyc = QueryGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(cyc.topology(), Topology::Cyclic);
        assert!(cyc.is_cyclic());
    }

    #[test]
    fn forest_and_edge_free() {
        let forest = QueryGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(forest.topology(), Topology::Forest);
        assert!(forest.is_forest());
        assert!(!forest.is_tree());
        let empty = QueryGraph::from_edges(3, &[]);
        assert_eq!(empty.topology(), Topology::EdgeFree);
        assert_eq!(empty.components().len(), 3);
    }

    #[test]
    fn two_vertex_chain() {
        let g = QueryGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(g.topology(), Topology::Chain);
    }

    #[test]
    fn from_stats_uses_explicit_edges_only() {
        let stats = PatternStats::synthetic(
            1.0,
            vec![1.0, 1.0, 1.0],
            vec![
                vec![1.0, 0.3, 1.0],
                vec![0.3, 1.0, 1.0],
                vec![1.0, 1.0, 1.0],
            ],
        );
        let g = QueryGraph::from_stats(&stats);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn components_enumeration() {
        let g = QueryGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }
}
