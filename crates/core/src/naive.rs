//! Exhaustive reference engine (test oracle).
//!
//! Evaluates a [`CompiledPattern`] by brute-force enumeration over the
//! window buffer: every arriving event triggers enumeration of all matches
//! in which it is the latest event. Runtime is exponential, but the engine
//! is *obviously correct*, which makes it the semantic ground truth for the
//! NFA and tree engines in equivalence tests. It shares the negation and
//! buffering infrastructure with the real engines so all three implement
//! identical semantics.

use crate::buffer::TypeBuffers;
use crate::compile::CompiledPattern;
use crate::engine::{Engine, EngineConfig};
use crate::event::{EventRef, Timestamp};
use crate::matches::{validate_match, Binding, Match};
use crate::metrics::EngineMetrics;
use crate::negation::DeferredStore;
use std::collections::HashSet;

/// The brute-force oracle engine.
pub struct NaiveEngine {
    cp: CompiledPattern,
    cfg: EngineConfig,
    buffers: TypeBuffers,
    deferred: DeferredStore,
    watermark: Timestamp,
    metrics: EngineMetrics,
    consumed: HashSet<u64>,
}

impl NaiveEngine {
    /// Creates an oracle for one compiled pattern branch.
    pub fn new(cp: CompiledPattern, cfg: EngineConfig) -> NaiveEngine {
        NaiveEngine {
            cp,
            cfg,
            buffers: TypeBuffers::new(),
            deferred: DeferredStore::new(),
            watermark: 0,
            metrics: EngineMetrics::new(),
            consumed: HashSet::new(),
        }
    }

    fn emit(&mut self, m: Match, out: &mut Vec<Match>) {
        if self.cp.strategy.consumes() {
            if m.events().any(|e| self.consumed.contains(&e.seq)) {
                return;
            }
            for e in m.events() {
                self.consumed.insert(e.seq);
            }
        }
        self.metrics.matches_emitted += 1;
        out.push(m);
    }

    fn release_deferred(&mut self, watermark: Timestamp, out: &mut Vec<Match>) {
        let mut ready = Vec::new();
        self.deferred.drain_ready(watermark, &mut ready);
        for m in ready {
            self.emit(m, out);
        }
    }

    /// Enumerates all matches whose latest (max-seq) event is `newest`.
    fn enumerate(&mut self, newest: &EventRef, out: &mut Vec<Match>) {
        let n = self.cp.n();
        let mut bindings: Vec<Option<Binding>> = vec![None; n];
        let mut found = Vec::new();
        self.assign(0, newest, &mut bindings, &mut found);
        for m in found {
            if let Some(m) = self
                .deferred
                .admit(&self.cp, m, self.watermark, &self.buffers)
            {
                self.emit(m, out)
            }
        }
    }

    fn assign(
        &self,
        elem: usize,
        newest: &EventRef,
        bindings: &mut Vec<Option<Binding>>,
        found: &mut Vec<Match>,
    ) {
        let n = self.cp.n();
        if elem == n {
            // The newest event must participate, making it the unique
            // enumeration point of this match.
            let uses_newest = bindings
                .iter()
                .flatten()
                .flat_map(|b| b.events())
                .any(|e| e.seq == newest.seq);
            if !uses_newest {
                return;
            }
            let m = Match {
                bindings: bindings
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        (
                            self.cp.elements[i].position,
                            b.clone().expect("all elements bound"),
                        )
                    })
                    .collect(),
                last_ts: newest.ts,
                emitted_at: newest.ts,
            };
            if validate_match(&self.cp, &m).is_ok() {
                found.push(m);
            }
            return;
        }
        let ty = self.cp.elements[elem].event_type;
        let candidates: Vec<EventRef> = self
            .buffers
            .iter_type(ty)
            .filter(|e| e.seq <= newest.seq)
            .filter(|e| !self.consumed.contains(&e.seq))
            .filter(|e| !bound_seq(bindings, e.seq))
            .cloned()
            .collect();
        if self.cp.elements[elem].kleene {
            // Enumerate non-empty subsets in seq order, capped.
            let cap = self.cfg.max_kleene_events;
            let mut subset: Vec<EventRef> = Vec::new();
            self.kleene_subsets(
                elem,
                newest,
                &candidates,
                0,
                &mut subset,
                bindings,
                found,
                cap,
            );
        } else {
            for c in candidates {
                bindings[elem] = Some(Binding::One(c));
                self.assign(elem + 1, newest, bindings, found);
                bindings[elem] = None;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn kleene_subsets(
        &self,
        elem: usize,
        newest: &EventRef,
        candidates: &[EventRef],
        from: usize,
        subset: &mut Vec<EventRef>,
        bindings: &mut Vec<Option<Binding>>,
        found: &mut Vec<Match>,
        cap: usize,
    ) {
        if !subset.is_empty() {
            bindings[elem] = Some(Binding::Many(subset.clone()));
            self.assign(elem + 1, newest, bindings, found);
            bindings[elem] = None;
        }
        if subset.len() >= cap {
            return;
        }
        for i in from..candidates.len() {
            subset.push(candidates[i].clone());
            self.kleene_subsets(
                elem,
                newest,
                candidates,
                i + 1,
                subset,
                bindings,
                found,
                cap,
            );
            subset.pop();
        }
    }
}

fn bound_seq(bindings: &[Option<Binding>], seq: u64) -> bool {
    bindings
        .iter()
        .flatten()
        .flat_map(|b| b.events())
        .any(|e| e.seq == seq)
}

impl Engine for NaiveEngine {
    fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        self.watermark = self.watermark.max(event.ts);
        let watermark = self.watermark;
        self.release_deferred(watermark, out);
        self.deferred.on_event(&self.cp, event);
        self.buffers.prune(watermark, self.cp.window);
        if !self.cp.uses_type(event.type_id) {
            return;
        }
        self.metrics.events_relevant += 1;
        self.buffers.push(event.clone());
        if self.cp.elements_of_type(event.type_id).next().is_some() {
            self.enumerate(event, out);
        }
        self.metrics
            .record_live(self.deferred.len(), self.buffers.len());
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        self.release_deferred(Timestamp::MAX, out);
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TypeId};
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};
    use crate::selection::SelectionStrategy;
    use crate::stream::StreamBuilder;
    use crate::value::Value;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn run(cp: CompiledPattern, events: Vec<Event>) -> Vec<Match> {
        let mut b = StreamBuilder::new();
        for e in events {
            b.push(e);
        }
        let stream = b.build();
        let mut engine = NaiveEngine::new(cp, EngineConfig::default());
        let r = crate::engine::run_to_completion(&mut engine, &stream, true);
        r.matches
    }

    fn ev(tid: u32, ts: u64, x: i64) -> Event {
        Event::new(t(tid), ts, vec![Value::Int(x)])
    }

    #[test]
    fn simple_sequence_detection() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let ms = run(cp, vec![ev(0, 1, 0), ev(1, 2, 0), ev(0, 3, 0), ev(1, 4, 0)]);
        // (a@1,c@2), (a@1,c@4), (a@3,c@4).
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn window_limits_matches() {
        let mut b = PatternBuilder::new(2);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let ms = run(cp, vec![ev(0, 1, 0), ev(1, 10, 0)]);
        assert!(ms.is_empty());
    }

    #[test]
    fn sequence_requires_order() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let ms = run(cp, vec![ev(1, 1, 0), ev(0, 2, 0)]);
        assert!(ms.is_empty());
    }

    #[test]
    fn conjunction_ignores_order() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.and([a, c]).unwrap()).unwrap();
        let ms = run(cp, vec![ev(1, 1, 0), ev(0, 2, 0)]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn predicates_filter_matches() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let ms = run(cp, vec![ev(0, 1, 5), ev(1, 2, 3), ev(1, 3, 9)]);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].bindings[1].1.events().next().unwrap().ts, 3);
    }

    #[test]
    fn negation_blocks_match() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "n");
        let c = b.event(t(2), "c");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        // B between A and C kills it; B outside does not.
        let ms = run(cp.clone(), vec![ev(0, 1, 0), ev(1, 2, 0), ev(2, 3, 0)]);
        assert!(ms.is_empty());
        let ms = run(cp, vec![ev(1, 0, 0), ev(0, 1, 0), ev(2, 3, 0)]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn trailing_negation_defers_until_window_end() {
        let mut b = PatternBuilder::new(5);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "n");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let p = b.seq_exprs([ae, ne]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        // No B afterwards: emitted at flush (window end).
        let ms = run(cp.clone(), vec![ev(0, 1, 0)]);
        assert_eq!(ms.len(), 1);
        // B afterwards within window: suppressed.
        let ms = run(cp, vec![ev(0, 1, 0), ev(1, 3, 0)]);
        assert!(ms.is_empty());
    }

    #[test]
    fn kleene_enumerates_subsets() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        // a then 3 k's: 2^3 - 1 = 7 subset matches.
        let ms = run(cp, vec![ev(0, 1, 0), ev(1, 2, 0), ev(1, 3, 0), ev(1, 4, 0)]);
        assert_eq!(ms.len(), 7);
    }

    #[test]
    fn kleene_cap_limits_subsets() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut engine = NaiveEngine::new(
            cp,
            EngineConfig {
                max_kleene_events: 1,
                ..Default::default()
            },
        );
        let mut sb = StreamBuilder::new();
        for e in [ev(0, 1, 0), ev(1, 2, 0), ev(1, 3, 0)] {
            sb.push(e);
        }
        let r = crate::engine::run_to_completion(&mut engine, &sb.build(), true);
        // Only singleton subsets: {k@2}, {k@3}.
        assert_eq!(r.matches.len(), 2);
    }

    #[test]
    fn skip_till_next_match_consumes_events() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::SkipTillNextMatch);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        // Two a's, one c: only one match (c consumed).
        let ms = run(cp, vec![ev(0, 1, 0), ev(0, 2, 0), ev(1, 3, 0)]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn strict_contiguity_requires_adjacent_events() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::StrictContiguity);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        // a (#0), noise (#1), c (#2): not adjacent -> no match.
        let ms = run(cp.clone(), vec![ev(0, 1, 0), ev(2, 2, 0), ev(1, 3, 0)]);
        assert!(ms.is_empty());
        // a (#0), c (#1): adjacent -> match.
        let ms = run(cp, vec![ev(0, 1, 0), ev(1, 2, 0)]);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn disjunction_branches_union() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let e1 = b.expr(a);
        let e2 = b.expr(c);
        let p = b.or_exprs([e1, e2]).unwrap();
        let cps = CompiledPattern::compile(&p).unwrap();
        assert_eq!(cps.len(), 2);
        let engines: Vec<Box<dyn Engine>> = cps
            .into_iter()
            .map(|cp| Box::new(NaiveEngine::new(cp, EngineConfig::default())) as Box<dyn Engine>)
            .collect();
        let mut me = crate::engine::MultiEngine::new(engines, 10);
        let mut sb = StreamBuilder::new();
        sb.push(ev(0, 1, 0));
        sb.push(ev(1, 2, 0));
        let r = crate::engine::run_to_completion(&mut me, &sb.build(), true);
        assert_eq!(r.matches.len(), 2);
    }
}
