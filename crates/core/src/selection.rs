//! Event selection strategies (Section 6.2 of the paper).

use std::fmt;

/// How events are selected from the input stream into matches.
///
/// The paper discusses four strategies (after \[5\]):
///
/// * [`SkipTillAnyMatch`](SelectionStrategy::SkipTillAnyMatch) — an event may
///   participate in arbitrarily many matches; all combinations are detected.
///   This is the default throughout the paper and the only strategy with a
///   plan-independent result set.
/// * [`SkipTillNextMatch`](SelectionStrategy::SkipTillNextMatch) — an event
///   appears in at most one full match; partial matches advance with the
///   next matching event instead of forking, and events are consumed when a
///   full match is emitted.
/// * [`StrictContiguity`](SelectionStrategy::StrictContiguity) — matched
///   events must be adjacent in the input stream (adjacent global serial
///   numbers, in temporal-order succession).
/// * [`PartitionContiguity`](SelectionStrategy::PartitionContiguity) —
///   matched events must lie in the same partition and be adjacent within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionStrategy {
    /// Every combination of matching events is detected.
    #[default]
    SkipTillAnyMatch,
    /// Each event participates in at most one full match.
    SkipTillNextMatch,
    /// Matched events must be contiguous in the stream.
    StrictContiguity,
    /// Matched events must be contiguous within their partition.
    PartitionContiguity,
}

impl SelectionStrategy {
    /// Whether partial matches fork on every matching event. Only
    /// skip-till-next-match advances linearly (first match, no fork); the
    /// contiguity strategies *constrain* matches but still enumerate every
    /// valid combination, which out-of-order plans require forking for.
    pub fn forks(self) -> bool {
        !matches!(self, SelectionStrategy::SkipTillNextMatch)
    }

    /// Whether events are consumed (removed from further consideration) when
    /// a full match is emitted.
    pub fn consumes(self) -> bool {
        matches!(self, SelectionStrategy::SkipTillNextMatch)
    }

    /// Whether this strategy imposes a contiguity constraint between
    /// temporally adjacent matched events.
    pub fn contiguous(self) -> bool {
        matches!(
            self,
            SelectionStrategy::StrictContiguity | SelectionStrategy::PartitionContiguity
        )
    }

    /// Checks the contiguity constraint between two events that must be
    /// temporal neighbours in a match (`a` strictly before `b`).
    ///
    /// For [`StrictContiguity`](SelectionStrategy::StrictContiguity) the
    /// events must have adjacent global serial numbers; for
    /// [`PartitionContiguity`](SelectionStrategy::PartitionContiguity) they
    /// must share a partition and have adjacent per-partition serial numbers.
    /// Other strategies impose no constraint.
    pub fn neighbours_ok(self, a: &crate::event::Event, b: &crate::event::Event) -> bool {
        match self {
            SelectionStrategy::SkipTillAnyMatch | SelectionStrategy::SkipTillNextMatch => true,
            SelectionStrategy::StrictContiguity => b.seq == a.seq + 1,
            SelectionStrategy::PartitionContiguity => {
                a.partition == b.partition && b.part_seq == a.part_seq + 1
            }
        }
    }
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SelectionStrategy::SkipTillAnyMatch => "skip-till-any-match",
            SelectionStrategy::SkipTillNextMatch => "skip-till-next-match",
            SelectionStrategy::StrictContiguity => "strict-contiguity",
            SelectionStrategy::PartitionContiguity => "partition-contiguity",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TypeId};

    fn ev(seq: u64, partition: u32, part_seq: u64) -> Event {
        let mut e = Event::new(TypeId(0), seq, vec![]);
        e.seq = seq;
        e.partition = partition;
        e.part_seq = part_seq;
        e
    }

    #[test]
    fn default_is_any_match() {
        assert_eq!(
            SelectionStrategy::default(),
            SelectionStrategy::SkipTillAnyMatch
        );
        assert!(SelectionStrategy::SkipTillAnyMatch.forks());
        assert!(!SelectionStrategy::SkipTillNextMatch.forks());
        assert!(SelectionStrategy::StrictContiguity.forks());
        assert!(SelectionStrategy::PartitionContiguity.forks());
    }

    #[test]
    fn strict_contiguity_requires_adjacent_seq() {
        let s = SelectionStrategy::StrictContiguity;
        assert!(s.neighbours_ok(&ev(4, 0, 4), &ev(5, 0, 5)));
        assert!(!s.neighbours_ok(&ev(4, 0, 4), &ev(6, 0, 6)));
        assert!(!s.neighbours_ok(&ev(5, 0, 5), &ev(5, 0, 5)));
    }

    #[test]
    fn partition_contiguity_requires_same_partition() {
        let s = SelectionStrategy::PartitionContiguity;
        assert!(s.neighbours_ok(&ev(10, 2, 0), &ev(14, 2, 1)));
        assert!(!s.neighbours_ok(&ev(10, 2, 0), &ev(14, 3, 1)));
        assert!(!s.neighbours_ok(&ev(10, 2, 0), &ev(14, 2, 2)));
    }

    #[test]
    fn any_and_next_unconstrained() {
        assert!(SelectionStrategy::SkipTillAnyMatch.neighbours_ok(&ev(0, 0, 0), &ev(9, 5, 3)));
        assert!(SelectionStrategy::SkipTillNextMatch.neighbours_ok(&ev(0, 0, 0), &ev(9, 5, 3)));
        assert!(SelectionStrategy::SkipTillNextMatch.consumes());
        assert!(!SelectionStrategy::StrictContiguity.consumes());
        assert!(SelectionStrategy::StrictContiguity.contiguous());
        assert!(SelectionStrategy::PartitionContiguity.contiguous());
    }
}
