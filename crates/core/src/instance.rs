//! Partial-match instances and extension/merge compatibility checks,
//! shared by the order-based (NFA) and tree-based engines.

use crate::compile::CompiledPattern;
use crate::compiled::PredicateProgram;
use crate::event::{EventRef, Timestamp};
use crate::matches::Binding;
use crate::metrics::EngineMetrics;
use crate::selection::SelectionStrategy;
use std::collections::HashSet;

/// A partial match progressing through the NFA chain.
///
/// `bindings` is indexed by *element index* of the compiled pattern (not by
/// plan step), so predicate checks can address elements directly.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Bindings per element; `None` until the element's plan step runs.
    pub bindings: Vec<Option<Binding>>,
    /// Minimum bound timestamp (`u64::MAX` while empty).
    pub min_ts: Timestamp,
    /// Maximum bound timestamp (0 while empty).
    pub max_ts: Timestamp,
    /// Minimum bound serial number (`u64::MAX` while empty).
    pub min_seq: u64,
    /// Maximum bound serial number (0 while empty).
    pub max_seq: u64,
    /// Partition of the first bound event (partition contiguity).
    pub partition: Option<u32>,
    /// Number of bound events (Kleene sets count their members).
    pub event_count: usize,
    /// For an instance waiting at a Kleene state: the smallest serial number
    /// the accumulator may take next. Enumerates each subset exactly once.
    pub kl_gate: u64,
    /// Allocation generation stamped by the [`InstanceArena`] that derived
    /// this instance (0 for instances created outside an arena). Purely
    /// diagnostic: reused shells are fully re-initialized, so the
    /// generation only tells allocations apart.
    pub generation: u64,
}

impl Instance {
    /// Fresh empty instance for a pattern of `n` elements.
    pub fn empty(n: usize) -> Instance {
        Instance {
            bindings: vec![None; n],
            min_ts: Timestamp::MAX,
            max_ts: 0,
            min_seq: u64::MAX,
            max_seq: 0,
            partition: None,
            event_count: 0,
            kl_gate: 0,
            generation: 0,
        }
    }

    /// Whether `seq` is already bound somewhere in this instance.
    pub fn contains_seq(&self, seq: u64) -> bool {
        self.bindings
            .iter()
            .flatten()
            .flat_map(|b| b.events())
            .any(|e| e.seq == seq)
    }

    /// Whether any bound event was consumed (skip-till-next-match kill).
    pub fn intersects(&self, consumed: &HashSet<u64>) -> bool {
        self.bindings
            .iter()
            .flatten()
            .flat_map(|b| b.events())
            .any(|e| consumed.contains(&e.seq))
    }

    fn absorb_event_extents(&mut self, e: &EventRef) {
        self.min_ts = self.min_ts.min(e.ts);
        self.max_ts = self.max_ts.max(e.ts);
        self.min_seq = self.min_seq.min(e.seq);
        self.max_seq = self.max_seq.max(e.seq);
        self.partition.get_or_insert(e.partition);
        self.event_count += 1;
    }

    /// Binds `event` at non-Kleene element `elem`, in place.
    fn bind_single(&mut self, elem: usize, event: EventRef) {
        self.absorb_event_extents(&event);
        self.bindings[elem] = Some(Binding::One(event));
        self.kl_gate = 0;
    }

    /// Appends `event` to the Kleene accumulator of `elem`, in place.
    fn bind_kleene(&mut self, elem: usize, event: EventRef) {
        let gate = event.seq + 1;
        self.absorb_event_extents(&event);
        match &mut self.bindings[elem] {
            Some(Binding::Many(es)) => es.push(event),
            slot @ None => *slot = Some(Binding::Many(vec![event])),
            Some(Binding::One(_)) => unreachable!("Kleene element bound as single"),
        }
        self.kl_gate = gate;
    }

    /// Clone with `event` bound at non-Kleene element `elem`.
    pub fn with_single(&self, elem: usize, event: EventRef) -> Instance {
        let mut inst = self.clone();
        inst.bind_single(elem, event);
        inst
    }

    /// Clone with `event` appended to the Kleene accumulator of `elem`.
    pub fn with_kleene(&self, elem: usize, event: EventRef) -> Instance {
        let mut inst = self.clone();
        inst.bind_kleene(elem, event);
        inst
    }

    /// Size of the Kleene accumulator at `elem` (0 when unbound).
    pub fn kleene_len(&self, elem: usize) -> usize {
        match &self.bindings[elem] {
            Some(Binding::Many(es)) => es.len(),
            _ => 0,
        }
    }

    /// Whether the instance has expired: nothing arriving at or after the
    /// watermark can complete it inside the window.
    pub fn expired(&self, watermark: Timestamp, window: u64) -> bool {
        self.event_count > 0 && self.min_ts + window < watermark
    }
}

/// Checks whether `event` can bind at `elem` given the instance's current
/// bindings: distinctness, filters, pairwise predicates, temporal
/// precedence, window, and selection-strategy feasibility.
///
/// `metrics` counts predicate evaluations. Interpreted path; see
/// [`compatible_with`] for the compiled one.
pub fn compatible(
    cp: &CompiledPattern,
    inst: &Instance,
    elem: usize,
    event: &EventRef,
    consumed: &HashSet<u64>,
    metrics: &mut EngineMetrics,
) -> bool {
    compatible_with(cp, None, inst, elem, event, consumed, metrics)
}

/// [`compatible`] with an optional compiled [`PredicateProgram`]: when
/// `prog` is `Some`, filters and pairwise predicates evaluate through the
/// pre-lowered (and fused) evaluators instead of walking the predicate
/// ASTs. The decision is identical either way; only
/// [`EngineMetrics::predicate_evaluations`] may differ (fused ranges count
/// one invocation where the interpreted path counts each conjunct).
pub fn compatible_with(
    cp: &CompiledPattern,
    prog: Option<&PredicateProgram>,
    inst: &Instance,
    elem: usize,
    event: &EventRef,
    consumed: &HashSet<u64>,
    metrics: &mut EngineMetrics,
) -> bool {
    if cp.strategy.consumes() && consumed.contains(&event.seq) {
        return false;
    }
    if inst.contains_seq(event.seq) {
        return false;
    }
    // Window feasibility.
    if inst.event_count > 0 {
        let lo = inst.min_ts.min(event.ts);
        let hi = inst.max_ts.max(event.ts);
        if hi - lo > cp.window {
            return false;
        }
    }
    // Filters.
    match prog {
        Some(pr) => {
            if !pr.element_passes(elem, event, &mut metrics.predicate_evaluations) {
                return false;
            }
        }
        None => {
            for &pi in cp.filters_of(elem) {
                metrics.predicate_evaluations += 1;
                if !cp.predicates[pi].eval_single(cp.elements[elem].position, event) {
                    return false;
                }
            }
        }
    }
    // Pairwise predicates and precedence against bound elements.
    let pos = cp.elements[elem].position;
    for (j, binding) in inst.bindings.iter().enumerate() {
        let Some(binding) = binding else { continue };
        if j != elem {
            if cp.must_precede(elem, j) && event.ts >= binding.min_ts() {
                return false;
            }
            if cp.must_precede(j, elem) && binding.max_ts() >= event.ts {
                return false;
            }
        }
        match prog {
            Some(pr) => {
                for pair in pr.pairs_between(elem, j) {
                    for other in binding.events() {
                        metrics.predicate_evaluations += 1;
                        if !pair.eval(event, other) {
                            return false;
                        }
                    }
                }
            }
            None => {
                let pos_j = cp.elements[j].position;
                for &pi in cp.predicates_between(elem, j) {
                    let p = &cp.predicates[pi];
                    for other in binding.events() {
                        metrics.predicate_evaluations += 1;
                        if !p.eval_pair(pos, event, pos_j, other) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    // Kleene self-consistency: the new member must respect precedence and
    // window against the accumulator it joins (already covered: the
    // accumulator is part of `bindings[elem]`, and elem vs elem precedence
    // never holds). Nothing further to check.

    // Selection strategies: span feasibility and partition pinning.
    match cp.strategy {
        SelectionStrategy::StrictContiguity if !cp.has_kleene() => {
            let span = inst.max_seq.max(event.seq) - inst.min_seq.min(event.seq);
            if inst.event_count > 0 && span as usize >= cp.n() {
                return false;
            }
        }
        SelectionStrategy::PartitionContiguity => {
            if let Some(p) = inst.partition {
                if p != event.partition {
                    return false;
                }
            }
        }
        _ => {}
    }
    true
}

/// Checks whether two instances over *disjoint element sets* (sibling
/// subtrees of a tree plan) can merge: distinct events, window, temporal
/// precedence, cross predicates, and selection-strategy feasibility.
/// Interpreted path; see [`merge_compatible_with`] for the compiled one.
pub fn merge_compatible(
    cp: &CompiledPattern,
    left: &Instance,
    right: &Instance,
    consumed: &HashSet<u64>,
    metrics: &mut EngineMetrics,
) -> bool {
    merge_compatible_with(cp, None, left, right, consumed, metrics)
}

/// [`merge_compatible`] with an optional compiled [`PredicateProgram`];
/// same decision, pre-lowered evaluators when `prog` is `Some`.
pub fn merge_compatible_with(
    cp: &CompiledPattern,
    prog: Option<&PredicateProgram>,
    left: &Instance,
    right: &Instance,
    consumed: &HashSet<u64>,
    metrics: &mut EngineMetrics,
) -> bool {
    // Window over the union.
    let lo = left.min_ts.min(right.min_ts);
    let hi = left.max_ts.max(right.max_ts);
    if left.event_count > 0 && right.event_count > 0 && hi - lo > cp.window {
        return false;
    }
    if cp.strategy.consumes() && (left.intersects(consumed) || right.intersects(consumed)) {
        return false;
    }
    // Event distinctness across the two sides.
    for b in right.bindings.iter().flatten() {
        for e in b.events() {
            if left.contains_seq(e.seq) {
                return false;
            }
        }
    }
    // Precedence and predicates between every bound pair across sides.
    for (i, bi) in left.bindings.iter().enumerate() {
        let Some(bi) = bi else { continue };
        for (j, bj) in right.bindings.iter().enumerate() {
            let Some(bj) = bj else { continue };
            if cp.must_precede(i, j) && bi.max_ts() >= bj.min_ts() {
                return false;
            }
            if cp.must_precede(j, i) && bj.max_ts() >= bi.min_ts() {
                return false;
            }
            match prog {
                Some(pr) => {
                    for pair in pr.pairs_between(i, j) {
                        for x in bi.events() {
                            for y in bj.events() {
                                metrics.predicate_evaluations += 1;
                                if !pair.eval(x, y) {
                                    return false;
                                }
                            }
                        }
                    }
                }
                None => {
                    let pos_i = cp.elements[i].position;
                    let pos_j = cp.elements[j].position;
                    for &pi in cp.predicates_between(i, j) {
                        let p = &cp.predicates[pi];
                        for x in bi.events() {
                            for y in bj.events() {
                                metrics.predicate_evaluations += 1;
                                if !p.eval_pair(pos_i, x, pos_j, y) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Strategy feasibility.
    match cp.strategy {
        SelectionStrategy::StrictContiguity if !cp.has_kleene() => {
            let span = left.max_seq.max(right.max_seq) - left.min_seq.min(right.min_seq);
            if span as usize >= cp.n() {
                return false;
            }
        }
        SelectionStrategy::PartitionContiguity => {
            if let (Some(a), Some(b)) = (left.partition, right.partition) {
                if a != b {
                    return false;
                }
            }
        }
        _ => {}
    }
    true
}

impl Instance {
    /// Merges two instances over disjoint element sets (no compatibility
    /// checks — call [`merge_compatible`] first).
    pub fn merge(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for (i, b) in other.bindings.iter().enumerate() {
            if let Some(b) = b {
                debug_assert!(out.bindings[i].is_none(), "element bound on both sides");
                out.bindings[i] = Some(b.clone());
            }
        }
        out.min_ts = self.min_ts.min(other.min_ts);
        out.max_ts = self.max_ts.max(other.max_ts);
        out.min_seq = self.min_seq.min(other.min_seq);
        out.max_seq = self.max_seq.max(other.max_seq);
        out.partition = self.partition.or(other.partition);
        out.event_count = self.event_count + other.event_count;
        out.kl_gate = 0;
        out
    }
}

/// A reuse pool for partial-match instances.
///
/// Engine hot paths derive thousands of short-lived instances per event
/// (forks, Kleene growth, joins) and kill most of them shortly after
/// (window expiry, consumed events). Deriving through the arena reuses the
/// `bindings` vector spine of retired instances instead of re-allocating
/// it, and [`retain_or_retire`] routes kill-path removals back into the
/// pool. Each derived instance is stamped with a monotonically increasing
/// [`Instance::generation`].
///
/// The arena is purely an allocation strategy: derived instances are fully
/// re-initialized, so engine results are byte-identical with or without
/// reuse.
#[derive(Debug, Default)]
pub struct InstanceArena {
    free: Vec<Instance>,
    generation: u64,
    allocs: u64,
    reuses: u64,
}

impl InstanceArena {
    /// Retired shells kept for reuse; beyond this the shells are dropped.
    const MAX_FREE: usize = 4096;

    /// Fresh, empty arena.
    pub fn new() -> InstanceArena {
        InstanceArena::default()
    }

    /// A copy of `src` backed by a reused shell when one is available.
    fn derive(&mut self, src: &Instance) -> Instance {
        self.generation += 1;
        let mut inst = match self.free.pop() {
            Some(mut shell) => {
                self.reuses += 1;
                shell.bindings.clear();
                shell.bindings.extend(src.bindings.iter().cloned());
                shell.min_ts = src.min_ts;
                shell.max_ts = src.max_ts;
                shell.min_seq = src.min_seq;
                shell.max_seq = src.max_seq;
                shell.partition = src.partition;
                shell.event_count = src.event_count;
                shell.kl_gate = src.kl_gate;
                shell
            }
            None => {
                self.allocs += 1;
                src.clone()
            }
        };
        inst.generation = self.generation;
        inst
    }

    /// Arena-backed [`Instance::with_single`].
    pub fn with_single(&mut self, src: &Instance, elem: usize, event: EventRef) -> Instance {
        let mut inst = self.derive(src);
        inst.bind_single(elem, event);
        inst
    }

    /// Arena-backed [`Instance::with_kleene`].
    pub fn with_kleene(&mut self, src: &Instance, elem: usize, event: EventRef) -> Instance {
        let mut inst = self.derive(src);
        inst.bind_kleene(elem, event);
        inst
    }

    /// Arena-backed [`Instance::merge`].
    pub fn merge(&mut self, left: &Instance, right: &Instance) -> Instance {
        let mut out = self.derive(left);
        for (i, b) in right.bindings.iter().enumerate() {
            if let Some(b) = b {
                debug_assert!(out.bindings[i].is_none(), "element bound on both sides");
                out.bindings[i] = Some(b.clone());
            }
        }
        out.min_ts = left.min_ts.min(right.min_ts);
        out.max_ts = left.max_ts.max(right.max_ts);
        out.min_seq = left.min_seq.min(right.min_seq);
        out.max_seq = left.max_seq.max(right.max_seq);
        out.partition = left.partition.or(right.partition);
        out.event_count = left.event_count + right.event_count;
        out.kl_gate = 0;
        out
    }

    /// Returns a dead instance's shell to the pool (bounded), releasing its
    /// event references immediately.
    pub fn retire(&mut self, mut inst: Instance) {
        if self.free.len() < Self::MAX_FREE {
            inst.bindings.clear();
            self.free.push(inst);
        }
    }

    /// Instances derived from fresh allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Instances derived by reusing a retired shell.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Shells currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// In-place stable retain over an instance store that retires removed
/// instances into `arena` instead of dropping them. Kept instances preserve
/// their relative order (engines emit matches in store order, so order
/// stability is load-bearing for byte-identical output).
pub fn retain_or_retire(
    v: &mut Vec<Instance>,
    arena: &mut InstanceArena,
    mut keep: impl FnMut(&Instance) -> bool,
) {
    let mut kept = 0;
    for idx in 0..v.len() {
        if keep(&v[idx]) {
            v.swap(kept, idx);
            kept += 1;
        }
    }
    for inst in v.drain(kept..) {
        arena.retire(inst);
    }
}

/// Exact contiguity validation at completion time (the incremental span
/// check is only a feasibility filter).
pub fn contiguity_ok(cp: &CompiledPattern, inst: &Instance) -> bool {
    if !cp.strategy.contiguous() {
        return true;
    }
    let mut events: Vec<&EventRef> = inst
        .bindings
        .iter()
        .flatten()
        .flat_map(|b| b.events())
        .collect();
    events.sort_by_key(|e| e.seq);
    events
        .windows(2)
        .all(|w| cp.strategy.neighbours_ok(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TypeId};
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};
    use crate::value::Value;
    use std::sync::Arc;

    fn ev(tid: u32, ts: u64, seq: u64, x: i64) -> EventRef {
        let mut e = Event::new(TypeId(tid), ts, vec![Value::Int(x)]);
        e.seq = seq;
        Arc::new(e)
    }

    fn cp_seq2() -> CompiledPattern {
        let mut b = PatternBuilder::new(10);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
    }

    #[test]
    fn single_binding_updates_extents() {
        let i = Instance::empty(2).with_single(0, ev(0, 5, 3, 1));
        assert_eq!(i.min_ts, 5);
        assert_eq!(i.max_ts, 5);
        assert_eq!(i.event_count, 1);
        assert!(i.contains_seq(3));
        assert!(!i.contains_seq(4));
    }

    #[test]
    fn compatibility_respects_predicates_and_order() {
        let cp = cp_seq2();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let i = Instance::empty(2).with_single(0, ev(0, 5, 0, 10));
        // c later with bigger x: ok.
        assert!(compatible(&cp, &i, 1, &ev(1, 6, 1, 20), &consumed, &mut m));
        // c later with smaller x: predicate fails.
        assert!(!compatible(&cp, &i, 1, &ev(1, 6, 1, 5), &consumed, &mut m));
        // c earlier: precedence fails.
        assert!(!compatible(&cp, &i, 1, &ev(1, 4, 1, 20), &consumed, &mut m));
        // c too late: window fails.
        assert!(!compatible(
            &cp,
            &i,
            1,
            &ev(1, 16, 1, 20),
            &consumed,
            &mut m
        ));
        assert!(m.predicate_evaluations > 0);
    }

    #[test]
    fn distinctness_blocks_same_event() {
        // Same seq at both positions is rejected even with matching types.
        let mut b = PatternBuilder::new(10);
        let a1 = b.event(TypeId(0), "a1");
        let a2 = b.event(TypeId(0), "a2");
        let cp = CompiledPattern::compile_single(&b.and([a1, a2]).unwrap()).unwrap();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let e = ev(0, 5, 7, 0);
        let i = Instance::empty(2).with_single(0, e.clone());
        assert!(!compatible(&cp, &i, 1, &e, &consumed, &mut m));
    }

    #[test]
    fn consumed_events_rejected_under_next_match() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::SkipTillNextMatch);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let mut m = EngineMetrics::new();
        let mut consumed = HashSet::new();
        consumed.insert(1);
        let i = Instance::empty(2).with_single(0, ev(0, 5, 0, 0));
        assert!(!compatible(&cp, &i, 1, &ev(1, 6, 1, 0), &consumed, &mut m));
    }

    #[test]
    fn kleene_accumulator_grows_with_gate() {
        let i = Instance::empty(2);
        let i1 = i.with_kleene(1, ev(1, 2, 4, 0));
        assert_eq!(i1.kl_gate, 5);
        assert_eq!(i1.kleene_len(1), 1);
        let i2 = i1.with_kleene(1, ev(1, 3, 9, 0));
        assert_eq!(i2.kl_gate, 10);
        assert_eq!(i2.kleene_len(1), 2);
        assert_eq!(i2.event_count, 2);
    }

    #[test]
    fn expiry_is_window_relative() {
        let i = Instance::empty(1).with_single(0, ev(0, 100, 0, 0));
        assert!(!i.expired(105, 10));
        assert!(!i.expired(110, 10));
        assert!(i.expired(111, 10));
        assert!(!Instance::empty(1).expired(1000, 10)); // empty never expires
    }

    #[test]
    fn strict_span_feasibility() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::StrictContiguity);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let i = Instance::empty(2).with_single(0, ev(0, 1, 0, 0));
        // seq 1 adjacent: feasible; seq 5 leaves an unfillable gap.
        assert!(compatible(&cp, &i, 1, &ev(1, 2, 1, 0), &consumed, &mut m));
        assert!(!compatible(&cp, &i, 1, &ev(1, 2, 5, 0), &consumed, &mut m));
    }

    #[test]
    fn partition_pinning() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::PartitionContiguity);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let mut e0 = Event::new(TypeId(0), 1, vec![Value::Int(0)]);
        e0.partition = 3;
        let i = Instance::empty(2).with_single(0, Arc::new(e0));
        let mut e1 = Event::new(TypeId(1), 2, vec![Value::Int(0)]);
        e1.seq = 1;
        e1.partition = 4;
        assert!(!compatible(&cp, &i, 1, &Arc::new(e1), &consumed, &mut m));
    }

    #[test]
    fn merge_combines_disjoint_sides() {
        let cp = cp_seq2();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let left = Instance::empty(2).with_single(0, ev(0, 1, 0, 1));
        let right = Instance::empty(2).with_single(1, ev(1, 2, 1, 9));
        assert!(merge_compatible(&cp, &left, &right, &consumed, &mut m));
        let merged = left.merge(&right);
        assert_eq!(merged.event_count, 2);
        assert_eq!(merged.min_ts, 1);
        assert_eq!(merged.max_ts, 2);
        assert!(merged.bindings.iter().all(|b| b.is_some()));
    }

    #[test]
    fn merge_rejects_order_violation() {
        let cp = cp_seq2();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let left = Instance::empty(2).with_single(0, ev(0, 5, 1, 1));
        let right = Instance::empty(2).with_single(1, ev(1, 2, 0, 9));
        assert!(!merge_compatible(&cp, &left, &right, &consumed, &mut m));
    }

    #[test]
    fn merge_rejects_cross_predicate_violation() {
        let cp = cp_seq2();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let left = Instance::empty(2).with_single(0, ev(0, 1, 0, 9));
        let right = Instance::empty(2).with_single(1, ev(1, 2, 1, 1));
        assert!(!merge_compatible(&cp, &left, &right, &consumed, &mut m));
    }

    #[test]
    fn merge_rejects_shared_event() {
        let mut b = PatternBuilder::new(10);
        let a1 = b.event(TypeId(0), "a1");
        let a2 = b.event(TypeId(0), "a2");
        let cp = CompiledPattern::compile_single(&b.and([a1, a2]).unwrap()).unwrap();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let e = ev(0, 1, 7, 0);
        let left = Instance::empty(2).with_single(0, e.clone());
        let right = Instance::empty(2).with_single(1, e);
        assert!(!merge_compatible(&cp, &left, &right, &consumed, &mut m));
    }

    #[test]
    fn merge_rejects_window_violation() {
        let cp = cp_seq2();
        let mut m = EngineMetrics::new();
        let consumed = HashSet::new();
        let left = Instance::empty(2).with_single(0, ev(0, 1, 0, 1));
        let right = Instance::empty(2).with_single(1, ev(1, 50, 1, 9));
        assert!(!merge_compatible(&cp, &left, &right, &consumed, &mut m));
    }

    #[test]
    fn compiled_program_agrees_with_interpreted_compatible() {
        use crate::compiled::PredicateProgram;
        let cp = cp_seq2();
        let prog = PredicateProgram::compile(&cp);
        let consumed = HashSet::new();
        let i = Instance::empty(2).with_single(0, ev(0, 5, 0, 10));
        for (ts, seq, x) in [(6, 1, 20), (6, 1, 5), (4, 1, 20), (16, 1, 20), (5, 0, 20)] {
            let e = ev(1, ts, seq, x);
            let mut m1 = EngineMetrics::new();
            let mut m2 = EngineMetrics::new();
            assert_eq!(
                compatible(&cp, &i, 1, &e, &consumed, &mut m1),
                compatible_with(&cp, Some(&prog), &i, 1, &e, &consumed, &mut m2),
                "ts {ts} seq {seq} x {x}"
            );
        }
        // Merge path agrees too.
        let left = Instance::empty(2).with_single(0, ev(0, 1, 0, 1));
        for x in [0, 5, 9] {
            let right = Instance::empty(2).with_single(1, ev(1, 2, 1, x));
            let mut m1 = EngineMetrics::new();
            let mut m2 = EngineMetrics::new();
            assert_eq!(
                merge_compatible(&cp, &left, &right, &consumed, &mut m1),
                merge_compatible_with(&cp, Some(&prog), &left, &right, &consumed, &mut m2),
                "x {x}"
            );
        }
    }

    #[test]
    fn arena_reuses_retired_shells_and_stamps_generations() {
        let mut arena = InstanceArena::new();
        let base = Instance::empty(2);
        let a = arena.with_single(&base, 0, ev(0, 5, 3, 1));
        assert_eq!(a.generation, 1);
        assert_eq!((arena.allocs(), arena.reuses()), (1, 0));
        assert_eq!(a.bindings, base.with_single(0, ev(0, 5, 3, 1)).bindings);
        arena.retire(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.with_single(&base, 0, ev(0, 7, 4, 2));
        assert_eq!(b.generation, 2);
        assert_eq!((arena.allocs(), arena.reuses()), (1, 1));
        assert_eq!(b.min_ts, 7);
        assert_eq!(b.event_count, 1);
        assert!(
            b.contains_seq(4) && !b.contains_seq(3),
            "fully re-initialized"
        );
        // Kleene and merge derivations behave like the clone-based ones.
        let k = arena.with_kleene(&base, 1, ev(1, 2, 9, 0));
        assert_eq!(k.kl_gate, 10);
        let left = Instance::empty(2).with_single(0, ev(0, 1, 0, 1));
        let right = Instance::empty(2).with_single(1, ev(1, 2, 1, 9));
        let m_arena = arena.merge(&left, &right);
        let m_clone = left.merge(&right);
        assert_eq!(m_arena.bindings, m_clone.bindings);
        assert_eq!(m_arena.event_count, m_clone.event_count);
        assert_eq!(m_arena.min_ts, m_clone.min_ts);
    }

    #[test]
    fn retain_or_retire_is_stable_and_pools_removed() {
        let mut arena = InstanceArena::new();
        let mut v: Vec<Instance> = (0..6u64)
            .map(|s| Instance::empty(1).with_single(0, ev(0, s, s, 0)))
            .collect();
        retain_or_retire(&mut v, &mut arena, |i| i.min_seq % 2 == 1);
        let seqs: Vec<u64> = v.iter().map(|i| i.min_seq).collect();
        assert_eq!(seqs, vec![1, 3, 5], "kept order preserved");
        assert_eq!(arena.pooled(), 3);
    }

    #[test]
    fn contiguity_final_check() {
        let mut b = PatternBuilder::new(10);
        b.strategy(SelectionStrategy::StrictContiguity);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let good = Instance::empty(2)
            .with_single(0, ev(0, 1, 0, 0))
            .with_single(1, ev(1, 2, 1, 0));
        assert!(contiguity_ok(&cp, &good));
        let bad = Instance::empty(2)
            .with_single(0, ev(0, 1, 0, 0))
            .with_single(1, ev(1, 2, 2, 0));
        assert!(!contiguity_ok(&cp, &bad));
    }
}
