//! Pairwise predicates between pattern positions.
//!
//! The paper assumes all inter-event constraints are at most pairwise
//! (Section 2.1); a [`Predicate`] therefore references at most two pattern
//! positions. Predicates are plain data (no closures) so they can be
//! inspected by the optimizer (query-graph construction, selectivity
//! bookkeeping) and evaluated identically by every engine.

use crate::event::Event;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Attribute `attr` of the event bound at pattern position `position`.
    Attr {
        /// Pattern position (unique index of a primitive event).
        position: usize,
        /// Attribute index within the event's schema.
        attr: usize,
    },
    /// Occurrence timestamp of the event bound at `position`. Used by the
    /// SEQ→AND rewriting of Section 5.1.
    Ts {
        /// Pattern position.
        position: usize,
    },
    /// A literal constant.
    Const(Value),
}

impl Operand {
    /// The pattern position this operand references, if any.
    pub fn position(&self) -> Option<usize> {
        match self {
            Operand::Attr { position, .. } | Operand::Ts { position } => Some(*position),
            Operand::Const(_) => None,
        }
    }

    fn resolve<'a>(&self, lookup: &impl Fn(usize) -> Option<&'a Event>) -> Option<Value> {
        match self {
            Operand::Attr { position, attr } => lookup(*position)?.attr(*attr).cloned(),
            Operand::Ts { position } => Some(Value::Int(lookup(*position)?.ts as i64)),
            Operand::Const(v) => Some(v.clone()),
        }
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Applies the operator to a comparison result. Incomparable operands
    /// (`None`) fail every operator, including `!=`.
    pub fn test(self, ord: Option<Ordering>) -> bool {
        match ord {
            None => false,
            Some(o) => match self {
                CmpOp::Lt => o == Ordering::Less,
                CmpOp::Le => o != Ordering::Greater,
                CmpOp::Eq => o == Ordering::Equal,
                CmpOp::Ne => o != Ordering::Equal,
                CmpOp::Ge => o != Ordering::Less,
                CmpOp::Gt => o == Ordering::Greater,
            },
        }
    }

    /// The operator with its arguments swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// A (at most) pairwise condition `left op right`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl Predicate {
    /// Attribute-vs-attribute predicate between two positions.
    pub fn attr_cmp(
        pos_a: usize,
        attr_a: usize,
        op: CmpOp,
        pos_b: usize,
        attr_b: usize,
    ) -> Predicate {
        Predicate {
            left: Operand::Attr {
                position: pos_a,
                attr: attr_a,
            },
            op,
            right: Operand::Attr {
                position: pos_b,
                attr: attr_b,
            },
        }
    }

    /// Attribute-vs-constant filter on a single position.
    pub fn attr_const(pos: usize, attr: usize, op: CmpOp, value: Value) -> Predicate {
        Predicate {
            left: Operand::Attr {
                position: pos,
                attr,
            },
            op,
            right: Operand::Const(value),
        }
    }

    /// Temporal-order predicate `ts(pos_a) < ts(pos_b)` (the SEQ→AND
    /// rewriting of Section 5.1).
    pub fn ts_before(pos_a: usize, pos_b: usize) -> Predicate {
        Predicate {
            left: Operand::Ts { position: pos_a },
            op: CmpOp::Lt,
            right: Operand::Ts { position: pos_b },
        }
    }

    /// The set of positions this predicate references: `(lo, hi)` where
    /// `hi` is `None` for unary (filter) predicates. `lo <= hi` always.
    pub fn position_pair(&self) -> (usize, Option<usize>) {
        match (self.left.position(), self.right.position()) {
            (Some(a), Some(b)) if a != b => (a.min(b), Some(a.max(b))),
            (Some(a), Some(_)) => (a, None), // both sides same position: filter
            (Some(a), None) | (None, Some(a)) => (a, None),
            (None, None) => (usize::MAX, None), // constant predicate; degenerate
        }
    }

    /// Whether this predicate references only one position (a filter).
    pub fn is_unary(&self) -> bool {
        self.position_pair().1.is_none()
    }

    /// Whether this predicate references `position`.
    pub fn references(&self, position: usize) -> bool {
        self.left.position() == Some(position) || self.right.position() == Some(position)
    }

    /// Evaluates the predicate with `lookup` resolving positions to events.
    ///
    /// Engines must only call this when every referenced position is bound;
    /// unresolvable operands make the predicate evaluate to `false`.
    pub fn eval<'a>(&self, lookup: impl Fn(usize) -> Option<&'a Event>) -> bool {
        let (Some(l), Some(r)) = (self.left.resolve(&lookup), self.right.resolve(&lookup)) else {
            return false;
        };
        self.op.test(l.partial_cmp_value(&r))
    }

    /// Fast path: evaluates a binary predicate given the two bound events.
    pub fn eval_pair(&self, pos_a: usize, ev_a: &Event, pos_b: usize, ev_b: &Event) -> bool {
        self.eval(|p| {
            if p == pos_a {
                Some(ev_a)
            } else if p == pos_b {
                Some(ev_b)
            } else {
                None
            }
        })
    }

    /// Fast path: evaluates a unary predicate against one event.
    pub fn eval_single(&self, pos: usize, ev: &Event) -> bool {
        self.eval(|p| if p == pos { Some(ev) } else { None })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_op = |o: &Operand, f: &mut fmt::Formatter<'_>| match o {
            Operand::Attr { position, attr } => write!(f, "e{position}.a{attr}"),
            Operand::Ts { position } => write!(f, "e{position}.ts"),
            Operand::Const(v) => write!(f, "{v}"),
        };
        fmt_op(&self.left, f)?;
        write!(f, " {} ", self.op)?;
        fmt_op(&self.right, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TypeId;

    fn ev(ts: u64, x: i64) -> Event {
        Event::new(TypeId(0), ts, vec![Value::Int(x)])
    }

    #[test]
    fn attr_comparison() {
        let p = Predicate::attr_cmp(0, 0, CmpOp::Lt, 1, 0);
        assert!(p.eval_pair(0, &ev(0, 1), 1, &ev(0, 2)));
        assert!(!p.eval_pair(0, &ev(0, 2), 1, &ev(0, 2)));
    }

    #[test]
    fn const_filter() {
        let p = Predicate::attr_const(0, 0, CmpOp::Ge, Value::Int(10));
        assert!(p.eval_single(0, &ev(0, 10)));
        assert!(!p.eval_single(0, &ev(0, 9)));
        assert!(p.is_unary());
    }

    #[test]
    fn temporal_predicate() {
        let p = Predicate::ts_before(0, 1);
        assert!(p.eval_pair(0, &ev(5, 0), 1, &ev(6, 0)));
        assert!(!p.eval_pair(0, &ev(6, 0), 1, &ev(6, 0)));
    }

    #[test]
    fn position_pair_normalization() {
        let p = Predicate::attr_cmp(3, 0, CmpOp::Eq, 1, 0);
        assert_eq!(p.position_pair(), (1, Some(3)));
        assert!(!p.is_unary());
        assert!(p.references(3));
        assert!(p.references(1));
        assert!(!p.references(0));
    }

    #[test]
    fn same_position_both_sides_is_filter() {
        let p = Predicate::attr_cmp(2, 0, CmpOp::Lt, 2, 1);
        assert_eq!(p.position_pair(), (2, None));
        assert!(p.is_unary());
    }

    #[test]
    fn unresolvable_operand_fails() {
        let p = Predicate::attr_cmp(0, 5, CmpOp::Eq, 1, 0); // attr 5 missing
        assert!(!p.eval_pair(0, &ev(0, 1), 1, &ev(0, 1)));
    }

    #[test]
    fn op_flip_roundtrip() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
        // a < b  ⇔  b > a
        let a = ev(0, 1);
        let b = ev(0, 2);
        let p = Predicate::attr_cmp(0, 0, CmpOp::Lt, 1, 0);
        let q = Predicate::attr_cmp(1, 0, CmpOp::Lt.flip(), 0, 0);
        assert_eq!(p.eval_pair(0, &a, 1, &b), q.eval_pair(0, &a, 1, &b));
    }

    #[test]
    fn incomparable_fails_all_ops() {
        let mixed = Event::new(TypeId(0), 0, vec![Value::from("s")]);
        let num = ev(0, 1);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt] {
            let p = Predicate::attr_cmp(0, 0, op, 1, 0);
            assert!(!p.eval_pair(0, &mixed, 1, &num));
        }
    }

    #[test]
    fn display_renders() {
        let p = Predicate::attr_cmp(0, 1, CmpOp::Le, 2, 3);
        assert_eq!(p.to_string(), "e0.a1 <= e2.a3");
    }
}
