//! Cost models (Sections 3.2, 4.1, 4.2, 6.1, 6.2).
//!
//! All CPG cost functions estimate the number of partial matches coexisting
//! within the time window, the paper's primary cost target:
//!
//! * [`cost_ord`] — order-based plans under skip-till-any-match
//!   (`Cost_ord`, Section 4.1);
//! * [`cost_ord_next`] — order-based plans under skip-till-next-match and
//!   the contiguity strategies (`Cost_next_ord`, Section 6.2);
//! * [`cost_tree`] / [`cost_tree_next`] — tree-based plans (`Cost_tree`,
//!   Sections 4.2 and 6.2);
//! * [`cost_lat_ord`] / [`cost_lat_tree`] — expected detection latency
//!   (`Cost_lat`, Section 6.1);
//! * [`CostModel`] — the hybrid objective
//!   `Cost_trpt(Plan) + α·Cost_lat(Plan)` used in the experiments.
//!
//! The JQPG-side functions [`cost_ldj`] and [`cost_bj`] (Section 3.2)
//! operate on a [`JoinInstance`]; [`reduce_to_join`] implements the
//! Theorem 1 reduction (`|R_i| = W·r_i`), so the equivalences of
//! Theorems 1 and 2 can be verified numerically.
//!
//! Conventions, following the paper's formulas exactly:
//!
//! * order-based costs include filter selectivities (`sel_ii`) at every
//!   step, mirroring `Π_{i,j≤k; i≤j} sel` in `PM(k)`;
//! * tree-based costs use `PM(leaf) = W·r_i` and cross-subtree
//!   selectivities only — filters do not appear, mirroring `C(N) = |R_i|`
//!   for leaves in `Cost_BJ`;
//! * `Cost_next_ord` is `Σ_k W·m[k]`, keeping the printed extra `W`
//!   factor (a monotone transform that does not affect plan choice).

use crate::plan::{OrderPlan, TreeNode, TreePlan};
use crate::selection::SelectionStrategy;
use crate::stats::PatternStats;

/// `Cost_ord` (Section 4.1): sum over plan prefixes of the expected number
/// of coexisting partial matches under skip-till-any-match.
pub fn cost_ord(stats: &PatternStats, order: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut pm = 1.0;
    for (k, &i) in order.iter().enumerate() {
        pm *= stats.count_in_window(i) * stats.sel[i][i];
        for &j in &order[..k] {
            pm *= stats.sel[i][j];
        }
        total += pm;
    }
    total
}

/// `Cost_next_ord` (Section 6.2): skip-till-next-match variant, with
/// `m[k] = W·min(r_{p_1..p_k})·Π sel` and cost `Σ_k W·m[k]`.
pub fn cost_ord_next(stats: &PatternStats, order: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut min_rate = f64::INFINITY;
    let mut sel_product = 1.0;
    for (k, &i) in order.iter().enumerate() {
        min_rate = min_rate.min(stats.rates[i]);
        sel_product *= stats.sel[i][i];
        for &j in &order[..k] {
            sel_product *= stats.sel[i][j];
        }
        let m_k = stats.window_ms * min_rate * sel_product;
        total += stats.window_ms * m_k;
    }
    total
}

/// `Cost_lat_ord` (Section 6.1): worst-case work remaining after the
/// temporally last event (`last_elem`) arrives — the buffered events of all
/// elements scheduled after it in the plan.
///
/// Partial prefixes that do not (yet) schedule `last_elem` have zero
/// latency cost: every element placed before `last_elem` is processed
/// before the match can complete. This makes the function usable for the
/// incremental evaluation done by greedy construction.
pub fn cost_lat_ord(stats: &PatternStats, order: &[usize], last_elem: usize) -> f64 {
    let Some(pos) = order.iter().position(|&e| e == last_elem) else {
        return 0.0;
    };
    order[pos + 1..]
        .iter()
        .map(|&i| stats.count_in_window(i))
        .sum()
}

/// Expected partial matches stored at a tree node covering `set`, under the
/// given strategy (tree convention: no filter selectivities).
fn pm_tree_set(stats: &PatternStats, set: &[usize], strategy: SelectionStrategy) -> f64 {
    match strategy {
        SelectionStrategy::SkipTillAnyMatch => {
            let mut pm = 1.0;
            for (a, &i) in set.iter().enumerate() {
                pm *= stats.count_in_window(i);
                for &j in &set[..a] {
                    pm *= stats.sel[i][j];
                }
            }
            pm
        }
        _ => {
            let min_rate = set
                .iter()
                .map(|&i| stats.rates[i])
                .fold(f64::INFINITY, f64::min);
            let mut pm = stats.window_ms * min_rate;
            for (a, &i) in set.iter().enumerate() {
                for &j in &set[..a] {
                    pm *= stats.sel[i][j];
                }
            }
            pm
        }
    }
}

fn cost_tree_rec(
    stats: &PatternStats,
    node: &TreeNode,
    strategy: SelectionStrategy,
    total: &mut f64,
) -> Vec<usize> {
    let set = match node {
        TreeNode::Leaf(i) => vec![*i],
        TreeNode::Node(l, r) => {
            let mut sl = cost_tree_rec(stats, l, strategy, total);
            let sr = cost_tree_rec(stats, r, strategy, total);
            sl.extend(sr);
            sl
        }
    };
    *total += pm_tree_set(stats, &set, strategy);
    set
}

/// `Cost_tree` (Section 4.2): sum of expected partial matches over all tree
/// nodes under skip-till-any-match.
pub fn cost_tree(stats: &PatternStats, tree: &TreeNode) -> f64 {
    let mut total = 0.0;
    cost_tree_rec(stats, tree, SelectionStrategy::SkipTillAnyMatch, &mut total);
    total
}

/// `Cost_next_tree` (Section 6.2): tree variant of the skip-till-next-match
/// model.
pub fn cost_tree_next(stats: &PatternStats, tree: &TreeNode) -> f64 {
    let mut total = 0.0;
    cost_tree_rec(
        stats,
        tree,
        SelectionStrategy::SkipTillNextMatch,
        &mut total,
    );
    total
}

/// `Cost_lat_tree` (Section 6.1): partial matches buffered on the siblings
/// of the nodes on the path from `last_elem`'s leaf to the root (root
/// excluded).
pub fn cost_lat_tree(
    stats: &PatternStats,
    tree: &TreeNode,
    last_elem: usize,
    strategy: SelectionStrategy,
) -> f64 {
    fn walk(
        stats: &PatternStats,
        node: &TreeNode,
        target: usize,
        strategy: SelectionStrategy,
    ) -> Option<f64> {
        match node {
            TreeNode::Leaf(i) => (*i == target).then_some(0.0),
            TreeNode::Node(l, r) => {
                if let Some(acc) = walk(stats, l, target, strategy) {
                    Some(acc + pm_tree_set(stats, &r.leaves(), strategy))
                } else {
                    walk(stats, r, target, strategy)
                        .map(|acc| acc + pm_tree_set(stats, &l.leaves(), strategy))
                }
            }
        }
    }
    walk(stats, tree, last_elem, strategy).expect("last_elem must be a leaf of the tree")
}

/// A join-query instance: relation cardinalities plus a selectivity matrix
/// (`sel[i][i]` holds filter selectivities).
#[derive(Debug, Clone)]
pub struct JoinInstance {
    /// Relation cardinalities `|R_i|`.
    pub cards: Vec<f64>,
    /// Pairwise selectivities `f_{i,j}` (symmetric; `f_{i,j} = 1` when no
    /// predicate links `R_i` and `R_j`).
    pub sel: Vec<Vec<f64>>,
}

/// The Theorem 1 reduction: event type `T_i` with rate `r_i` becomes a
/// relation of cardinality `W·r_i`, keeping selectivities.
pub fn reduce_to_join(stats: &PatternStats) -> JoinInstance {
    JoinInstance {
        cards: (0..stats.n()).map(|i| stats.count_in_window(i)).collect(),
        sel: stats.sel.clone(),
    }
}

/// `Cost_LDJ` (Section 3.2 / 4.1): intermediate-result sizes of the
/// left-deep join tree that joins relations in `order`.
pub fn cost_ldj(join: &JoinInstance, order: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut inter = 1.0;
    for (k, &i) in order.iter().enumerate() {
        // Joining R_i onto the intermediate result applies its filter and
        // its predicates against every relation already joined.
        let mut factor = join.cards[i] * join.sel[i][i];
        for &j in &order[..k] {
            factor *= join.sel[i][j];
        }
        inter *= factor;
        total += inter;
    }
    total
}

/// `Cost_BJ` (Section 4.2): sum of node costs of a bushy join tree, with
/// `C(leaf) = |R_i|` and `C(node) = |L|·|R|·f_{L,R}`.
pub fn cost_bj(join: &JoinInstance, tree: &TreeNode) -> f64 {
    fn rec(join: &JoinInstance, node: &TreeNode, total: &mut f64) -> (f64, Vec<usize>) {
        match node {
            TreeNode::Leaf(i) => {
                *total += join.cards[*i];
                (join.cards[*i], vec![*i])
            }
            TreeNode::Node(l, r) => {
                let (sl, setl) = rec(join, l, total);
                let (sr, setr) = rec(join, r, total);
                let mut f = 1.0;
                for &i in &setl {
                    for &j in &setr {
                        f *= join.sel[i][j];
                    }
                }
                let size = sl * sr * f;
                *total += size;
                let mut set = setl;
                set.extend(setr);
                (size, set)
            }
        }
    }
    let mut total = 0.0;
    rec(join, tree, &mut total);
    total
}

/// The plan objective used by the optimizer: a throughput cost chosen by
/// selection strategy, optionally blended with the latency cost
/// (`Cost = Cost_trpt + α·Cost_lat`, Section 6.1).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Selection strategy: picks the any-match or next-match formulas
    /// (contiguity strategies use the next-match model, per Section 6.2).
    pub strategy: SelectionStrategy,
    /// Latency weight `α` (0 disables the latency term).
    pub alpha: f64,
    /// The element known to arrive temporally last (sequences: the last
    /// element; conjunctions: supplied by the output profiler of
    /// Section 6.1). `None` disables the latency term.
    pub latency_last: Option<usize>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            strategy: SelectionStrategy::SkipTillAnyMatch,
            alpha: 0.0,
            latency_last: None,
        }
    }
}

impl CostModel {
    /// Pure-throughput model under skip-till-any-match.
    pub fn throughput() -> CostModel {
        CostModel::default()
    }

    /// Model matching a compiled pattern: its strategy, with the latency
    /// anchor set for sequences.
    pub fn for_pattern(cp: &crate::compile::CompiledPattern) -> CostModel {
        CostModel {
            strategy: cp.strategy,
            alpha: 0.0,
            latency_last: cp.last_element(),
        }
    }

    /// Sets the latency weight `α`.
    pub fn with_alpha(mut self, alpha: f64) -> CostModel {
        self.alpha = alpha;
        self
    }

    /// Sets the latency anchor element.
    pub fn with_latency_last(mut self, elem: Option<usize>) -> CostModel {
        self.latency_last = elem;
        self
    }

    /// Throughput component for an order.
    pub fn order_throughput(&self, stats: &PatternStats, order: &[usize]) -> f64 {
        match self.strategy {
            SelectionStrategy::SkipTillAnyMatch => cost_ord(stats, order),
            _ => cost_ord_next(stats, order),
        }
    }

    /// Latency component for an order (0 without an anchor).
    pub fn order_latency(&self, stats: &PatternStats, order: &[usize]) -> f64 {
        match self.latency_last {
            Some(last) => cost_lat_ord(stats, order, last),
            None => 0.0,
        }
    }

    /// Full objective for an order plan.
    pub fn order_cost(&self, stats: &PatternStats, order: &[usize]) -> f64 {
        let trpt = self.order_throughput(stats, order);
        if self.alpha == 0.0 {
            return trpt;
        }
        trpt + self.alpha * self.order_latency(stats, order)
    }

    /// Full objective for an [`OrderPlan`].
    pub fn order_plan_cost(&self, stats: &PatternStats, plan: &OrderPlan) -> f64 {
        self.order_cost(stats, plan.order())
    }

    /// Throughput component for a tree.
    pub fn tree_throughput(&self, stats: &PatternStats, tree: &TreeNode) -> f64 {
        match self.strategy {
            SelectionStrategy::SkipTillAnyMatch => cost_tree(stats, tree),
            _ => cost_tree_next(stats, tree),
        }
    }

    /// Latency component for a tree (0 without an anchor).
    pub fn tree_latency(&self, stats: &PatternStats, tree: &TreeNode) -> f64 {
        match self.latency_last {
            Some(last) => cost_lat_tree(stats, tree, last, self.strategy),
            None => 0.0,
        }
    }

    /// Full objective for a tree.
    pub fn tree_cost(&self, stats: &PatternStats, tree: &TreeNode) -> f64 {
        let trpt = self.tree_throughput(stats, tree);
        if self.alpha == 0.0 {
            return trpt;
        }
        trpt + self.alpha * self.tree_latency(stats, tree)
    }

    /// Full objective for a [`TreePlan`].
    pub fn tree_plan_cost(&self, stats: &PatternStats, plan: &TreePlan) -> f64 {
        self.tree_cost(stats, &plan.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 elements: rates 1, 2, 0.1 per ms; W = 10 ms; one selective
    /// predicate between 0 and 2.
    fn stats3() -> PatternStats {
        PatternStats::synthetic(
            10.0,
            vec![1.0, 2.0, 0.1],
            vec![
                vec![1.0, 1.0, 0.1],
                vec![1.0, 1.0, 1.0],
                vec![0.1, 1.0, 1.0],
            ],
        )
    }

    #[test]
    fn cost_ord_hand_computed() {
        let s = stats3();
        // Order [0,1,2]: PM1 = 10, PM2 = 10*20 = 200,
        // PM3 = 200 * 1 * 0.1*1 = 20. Total = 230.
        assert!((cost_ord(&s, &[0, 1, 2]) - 230.0).abs() < 1e-9);
        // Order [2,0,1]: PM1 = 1, PM2 = 1*10*0.1 = 1, PM3 = 1*20 = 20 -> 22.
        assert!((cost_ord(&s, &[2, 0, 1]) - 22.0).abs() < 1e-9);
    }

    #[test]
    fn rare_first_order_is_cheaper() {
        let s = stats3();
        assert!(cost_ord(&s, &[2, 0, 1]) < cost_ord(&s, &[0, 1, 2]));
    }

    #[test]
    fn cost_next_hand_computed() {
        let s = stats3();
        // Order [0,1,2]: m1 = 10*1, m2 = 10*1, m3 = 10*0.1*0.1 = 0.1.
        // cost = 10*(10 + 10 + 0.1) = 201.
        assert!((cost_ord_next(&s, &[0, 1, 2]) - 201.0).abs() < 1e-9);
    }

    #[test]
    fn next_cost_below_any_cost_for_skewed_rates() {
        let s = stats3();
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2]] {
            assert!(cost_ord_next(&s, &order) <= stats_any_upper(&s, &order));
        }
    }

    fn stats_any_upper(s: &PatternStats, order: &[usize; 3]) -> f64 {
        // W * Cost_ord is an upper bound for Cost_next_ord term by term
        // since min(r) <= Π(W r)/W ... use direct comparison of m[k] to PM(k).
        s.window_ms * cost_ord(s, order)
    }

    #[test]
    fn latency_cost_counts_successors() {
        let s = stats3();
        // last element is 2; order [2,0,1] leaves 0 and 1 after it.
        assert!((cost_lat_ord(&s, &[2, 0, 1], 2) - 30.0).abs() < 1e-9);
        // order [0,1,2] has nothing after 2.
        assert!((cost_lat_ord(&s, &[0, 1, 2], 2) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn tree_cost_hand_computed() {
        let s = stats3();
        // ((0 2) 1): leaves 10 + 1 + 20 = 31; node(0,2) = 10*1*0.1 = 1;
        // root = 1 * 20 * 1 = 20. total = 31 + 1 + 20 = 52.
        let t = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(2)),
            TreeNode::Leaf(1),
        );
        assert!((cost_tree(&s, &t) - 52.0).abs() < 1e-9);
    }

    #[test]
    fn tree_latency_sums_sibling_pms() {
        let s = stats3();
        let t = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(2)),
            TreeNode::Leaf(1),
        );
        // Path from leaf 2: sibling(leaf 2) = leaf 0 (PM 10);
        // sibling(node{0,2}) = leaf 1 (PM 20). Total 30.
        let lat = cost_lat_tree(&s, &t, 2, SelectionStrategy::SkipTillAnyMatch);
        assert!((lat - 30.0).abs() < 1e-9);
        // Last leaf on its own path: only the sibling subtree counts.
        let lat1 = cost_lat_tree(&s, &t, 1, SelectionStrategy::SkipTillAnyMatch);
        assert!((lat1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_ldj_equals_cost_ord() {
        let s = stats3();
        let join = reduce_to_join(&s);
        for order in [
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ] {
            let a = cost_ord(&s, &order);
            let b = cost_ldj(&join, &order);
            assert!(
                (a - b).abs() <= 1e-9 * a.max(1.0),
                "order {order:?}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn theorem2_bj_equals_cost_tree() {
        let s = stats3();
        let join = reduce_to_join(&s);
        let trees = [
            TreeNode::join(
                TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
                TreeNode::Leaf(2),
            ),
            TreeNode::join(
                TreeNode::Leaf(1),
                TreeNode::join(TreeNode::Leaf(2), TreeNode::Leaf(0)),
            ),
        ];
        for t in trees {
            let a = cost_tree(&s, &t);
            let b = cost_bj(&join, &t);
            assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{t}: {a} vs {b}");
        }
    }

    #[test]
    fn hybrid_model_blends_costs() {
        let s = stats3();
        let order = [2, 0, 1];
        let m0 = CostModel::throughput().with_latency_last(Some(2));
        let m1 = m0.clone().with_alpha(1.0);
        let trpt = m0.order_cost(&s, &order);
        let full = m1.order_cost(&s, &order);
        assert!((full - (trpt + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn strategy_switches_formula() {
        let s = stats3();
        let any = CostModel::throughput();
        let next = CostModel {
            strategy: SelectionStrategy::SkipTillNextMatch,
            ..Default::default()
        };
        let contiguity = CostModel {
            strategy: SelectionStrategy::StrictContiguity,
            ..Default::default()
        };
        let order = [0, 1, 2];
        assert!((any.order_cost(&s, &order) - cost_ord(&s, &order)).abs() < 1e-12);
        assert!((next.order_cost(&s, &order) - cost_ord_next(&s, &order)).abs() < 1e-12);
        assert!(
            (contiguity.order_cost(&s, &order) - cost_ord_next(&s, &order)).abs() < 1e-12,
            "contiguity uses the next-match model"
        );
    }

    #[test]
    fn left_deep_tree_orders_match_plan_costs() {
        // Cost_tree of a left-deep tree and Cost_ord of the same order rank
        // plans identically when there are no filters (tree convention).
        let s = stats3();
        let o1 = OrderPlan::new(vec![2, 0, 1]).unwrap();
        let o2 = OrderPlan::new(vec![0, 1, 2]).unwrap();
        let t1 = TreePlan::left_deep(&o1);
        let t2 = TreePlan::left_deep(&o2);
        let m = CostModel::throughput();
        let better_order = m.order_plan_cost(&s, &o1) < m.order_plan_cost(&s, &o2);
        let better_tree = m.tree_plan_cost(&s, &t1) < m.tree_plan_cost(&s, &t2);
        assert_eq!(better_order, better_tree);
    }
}
