//! Engine runtime metrics: the measurement side of Section 7.2.

use cep_obs::{LatencyHistogram, MetricsRegistry};

/// Counters collected by an engine while processing a stream.
///
/// * **Throughput** is primitive events processed per second of engine wall
///   time.
/// * **Memory** is the peak of live partial matches plus buffered events,
///   with a byte estimate — the harness's robust analogue of the paper's
///   peak-RSS measurement.
/// * **Latency** records, per emitted match, the wall time between the
///   start of processing of the event that completed the match and its
///   emission (deferred emissions add the deferral processing time) — as a
///   log₂ histogram ([`match_latency_ns`](EngineMetrics::match_latency_ns))
///   so tail percentiles survive aggregation, not just the mean.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Total events offered to the engine.
    pub events_processed: u64,
    /// Events of types that participate in the pattern.
    pub events_relevant: u64,
    /// Full matches emitted.
    pub matches_emitted: u64,
    /// Partial matches (instances) ever created.
    pub partial_matches_created: u64,
    /// Currently live partial matches.
    pub live_partial_matches: usize,
    /// Peak of live partial matches.
    pub peak_partial_matches: usize,
    /// Currently buffered events.
    pub buffered_events: usize,
    /// Peak of buffered events.
    pub peak_buffered_events: usize,
    /// Peak estimated bytes of (partial matches + buffers).
    pub peak_memory_bytes: usize,
    /// Predicate evaluations performed.
    pub predicate_evaluations: u64,
    /// Total wall time spent inside the engine, in nanoseconds (set by
    /// [`crate::engine::run_to_completion`]).
    pub wall_time_ns: u64,
    /// Log₂ histogram of per-event processing time in nanoseconds, sampled
    /// (every 8th event) by [`crate::engine::run_to_completion`] to keep
    /// the hot loop cheap.
    pub event_ns: LatencyHistogram,
    /// Log₂ histogram of per-match detection latency in nanoseconds; its
    /// [`sum`](LatencyHistogram::sum) is the former
    /// `match_latency_ns_total` counter (see
    /// [`match_latency_ns_total`](EngineMetrics::match_latency_ns_total)).
    pub match_latency_ns: LatencyHistogram,
    /// Plan swaps performed by an adaptive wrapper (0 for static engines).
    pub plan_swaps: u64,
    /// Events re-processed from the retained window across all plan swaps
    /// (the replay cost of adaptivity, in events).
    pub replayed_events: u64,
    /// Nanoseconds spent replaying retained events during plan swaps.
    pub replay_time_ns: u64,
    /// Log₂ histogram of per-swap replay time in nanoseconds (one sample
    /// per plan swap; its sum tracks
    /// [`replay_time_ns`](EngineMetrics::replay_time_ns)).
    pub replay_ns: LatencyHistogram,
    /// Events currently held in an adaptive wrapper's retained replay
    /// window (0 for static engines).
    pub retained_events: usize,
    /// Peak of the retained replay window.
    pub peak_retained_events: usize,
    /// Events absorbed by an adaptive wrapper's selectivity monitor (0
    /// when selectivity re-estimation is disabled or for static engines).
    pub selectivity_samples: u64,
    /// Plan swaps an adaptive wrapper declined because the predicted
    /// savings over the amortization horizon would not pay for the replay
    /// (a cheaper plan existed, but switching to it was not worth it yet).
    pub suppressed_swaps: u64,
    /// Extra event deliveries created by replicate-join broadcast routing:
    /// each event fanned out to all `N` shards adds `N − 1` here, so
    /// `events_processed == stream length + replicated_events` for a
    /// sharded run (0 for single-shard, non-replicating, or unsharded
    /// runs).
    pub replicated_events: u64,
    /// Duplicate matches suppressed by a sharded merge's signature dedup
    /// (a match with no partitioned event is detected by every shard; all
    /// copies beyond the first count here).
    pub dedup_hits: u64,
    /// Compiled-plan cache hits: engine builds (or adaptive replans) that
    /// reused a [`crate::compiled::PredicateProgram`] from a
    /// [`crate::compiled::PlanCache`] instead of recompiling (0 when no
    /// cache is in play).
    pub plan_cache_hits: u64,
    /// Compiled-plan cache misses: engine builds that had to lower the
    /// pattern's predicates from scratch (0 when no cache is in play).
    pub plan_cache_misses: u64,
    /// Equality-join posting-list probes performed by a delta-indexed
    /// engine (0 for materializing engines).
    pub index_probes: u64,
    /// Index list operations (inserts + expirations, across the type
    /// store and every posting list) performed by a delta-indexed engine
    /// — the amortized-constant per-event maintenance work (0 for
    /// materializing engines).
    pub delta_updates: u64,
    /// Log₂ histogram of per-event on-demand match-enumeration time in
    /// nanoseconds (one sample per enumerated delta; empty for
    /// materializing engines).
    pub enumeration_ns: LatencyHistogram,
    /// Query registrations accepted by a multi-query registry (0 outside
    /// registry execution). Counts registrations, not live queries:
    /// unregistering does not decrement.
    pub registered_queries: u64,
    /// Branch subscriptions that landed on an already-running fragment
    /// instead of building a new engine — the registry's sharing win
    /// (0 outside registry execution).
    pub shared_fragments: u64,
    /// Matches fanned out from shared fragments to subscribed queries:
    /// one per (query, match) delivery, so a fragment shared by three
    /// queries adds three per detected match (0 outside registry
    /// execution).
    pub fanout_emits: u64,
}

/// Estimated bytes per live partial match (bindings vector + bookkeeping).
pub const PARTIAL_MATCH_BYTES: usize = 96;
/// Estimated bytes per buffered event (Arc + shared payload share).
pub const BUFFERED_EVENT_BYTES: usize = 72;

impl EngineMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current live object counts, updating the peaks.
    pub fn record_live(&mut self, partial_matches: usize, buffered_events: usize) {
        self.live_partial_matches = partial_matches;
        self.buffered_events = buffered_events;
        self.peak_partial_matches = self.peak_partial_matches.max(partial_matches);
        self.peak_buffered_events = self.peak_buffered_events.max(buffered_events);
        let bytes = partial_matches * PARTIAL_MATCH_BYTES + buffered_events * BUFFERED_EVENT_BYTES;
        self.peak_memory_bytes = self.peak_memory_bytes.max(bytes);
    }

    /// Records the current size of an adaptive wrapper's retained replay
    /// window, updating its peak.
    pub fn record_retained(&mut self, retained: usize) {
        self.retained_events = retained;
        self.peak_retained_events = self.peak_retained_events.max(retained);
    }

    /// Events per second of engine wall time; 0 before any timing.
    pub fn throughput_eps(&self) -> f64 {
        if self.wall_time_ns == 0 {
            return 0.0;
        }
        self.events_processed as f64 / (self.wall_time_ns as f64 / 1e9)
    }

    /// Summed per-match detection latency in nanoseconds — the view the
    /// retired `match_latency_ns_total` counter used to provide, now
    /// derived from the histogram.
    pub fn match_latency_ns_total(&self) -> u64 {
        self.match_latency_ns.sum()
    }

    /// Mean per-match detection latency in milliseconds.
    pub fn avg_latency_ms(&self) -> f64 {
        if self.matches_emitted == 0 {
            return 0.0;
        }
        self.match_latency_ns.sum() as f64 / self.matches_emitted as f64 / 1e6
    }

    /// Merges counters from a *concurrently* executed engine (a parallel
    /// shard) into `self`.
    ///
    /// Contrast with [`absorb`](EngineMetrics::absorb), which combines
    /// engines sharing one thread and therefore *sums* live/peak state:
    /// shards run side by side on disjoint slices of the stream, so
    /// counters and latency sums add, peaks take the per-shard maximum
    /// (the honest per-worker bound — summing would claim a simultaneous
    /// peak that never has to occur), and wall time takes the maximum
    /// (overlapping execution, not sequential).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.events_processed += other.events_processed;
        self.events_relevant += other.events_relevant;
        self.matches_emitted += other.matches_emitted;
        self.partial_matches_created += other.partial_matches_created;
        self.live_partial_matches += other.live_partial_matches;
        self.peak_partial_matches = self.peak_partial_matches.max(other.peak_partial_matches);
        self.buffered_events += other.buffered_events;
        self.peak_buffered_events = self.peak_buffered_events.max(other.peak_buffered_events);
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.predicate_evaluations += other.predicate_evaluations;
        self.wall_time_ns = self.wall_time_ns.max(other.wall_time_ns);
        self.event_ns.merge(&other.event_ns);
        self.match_latency_ns.merge(&other.match_latency_ns);
        self.plan_swaps += other.plan_swaps;
        self.replayed_events += other.replayed_events;
        self.replay_time_ns += other.replay_time_ns;
        self.replay_ns.merge(&other.replay_ns);
        self.retained_events += other.retained_events;
        self.peak_retained_events = self.peak_retained_events.max(other.peak_retained_events);
        self.selectivity_samples += other.selectivity_samples;
        self.suppressed_swaps += other.suppressed_swaps;
        self.replicated_events += other.replicated_events;
        self.dedup_hits += other.dedup_hits;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.index_probes += other.index_probes;
        self.delta_updates += other.delta_updates;
        self.enumeration_ns.merge(&other.enumeration_ns);
        self.registered_queries += other.registered_queries;
        self.shared_fragments += other.shared_fragments;
        self.fanout_emits += other.fanout_emits;
    }

    /// Merges counters from another engine (used by multi-plan evaluation).
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.events_relevant += other.events_relevant;
        self.matches_emitted += other.matches_emitted;
        self.partial_matches_created += other.partial_matches_created;
        self.live_partial_matches += other.live_partial_matches;
        self.peak_partial_matches += other.peak_partial_matches;
        self.buffered_events += other.buffered_events;
        self.peak_buffered_events += other.peak_buffered_events;
        self.peak_memory_bytes += other.peak_memory_bytes;
        self.predicate_evaluations += other.predicate_evaluations;
        self.event_ns.merge(&other.event_ns);
        self.match_latency_ns.merge(&other.match_latency_ns);
        self.plan_swaps += other.plan_swaps;
        self.replayed_events += other.replayed_events;
        self.replay_time_ns += other.replay_time_ns;
        self.replay_ns.merge(&other.replay_ns);
        self.retained_events += other.retained_events;
        self.peak_retained_events += other.peak_retained_events;
        self.selectivity_samples += other.selectivity_samples;
        self.suppressed_swaps += other.suppressed_swaps;
        self.replicated_events += other.replicated_events;
        self.dedup_hits += other.dedup_hits;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.index_probes += other.index_probes;
        self.delta_updates += other.delta_updates;
        self.enumeration_ns.merge(&other.enumeration_ns);
        self.registered_queries += other.registered_queries;
        self.shared_fragments += other.shared_fragments;
        self.fanout_emits += other.fanout_emits;
    }

    /// Writes this snapshot into a [`MetricsRegistry`] under `labels`
    /// (e.g. `[("engine", "adaptive")]` or `[("shard", "3")]`). Repeated
    /// calls with distinct labels append samples to the same families, so
    /// one registry can hold per-engine and per-shard series side by side.
    pub fn export(&self, reg: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        reg.counter(
            "cep_events_processed_total",
            "Events offered to the engine",
            labels,
            self.events_processed,
        );
        reg.counter(
            "cep_events_relevant_total",
            "Events of pattern-participating types",
            labels,
            self.events_relevant,
        );
        reg.counter(
            "cep_matches_emitted_total",
            "Full matches emitted",
            labels,
            self.matches_emitted,
        );
        reg.counter(
            "cep_partial_matches_created_total",
            "Partial matches ever created",
            labels,
            self.partial_matches_created,
        );
        reg.counter(
            "cep_predicate_evaluations_total",
            "Predicate evaluations performed",
            labels,
            self.predicate_evaluations,
        );
        reg.counter(
            "cep_wall_time_ns_total",
            "Wall time spent inside the engine (ns)",
            labels,
            self.wall_time_ns,
        );
        reg.gauge(
            "cep_peak_partial_matches",
            "Peak live partial matches",
            labels,
            self.peak_partial_matches as f64,
        );
        reg.gauge(
            "cep_peak_buffered_events",
            "Peak buffered events",
            labels,
            self.peak_buffered_events as f64,
        );
        reg.gauge(
            "cep_peak_memory_bytes",
            "Peak estimated bytes of partial matches + buffers",
            labels,
            self.peak_memory_bytes as f64,
        );
        reg.gauge(
            "cep_throughput_eps",
            "Events per second of engine wall time",
            labels,
            self.throughput_eps(),
        );
        reg.counter(
            "cep_plan_swaps_total",
            "Plan swaps performed by an adaptive wrapper",
            labels,
            self.plan_swaps,
        );
        reg.counter(
            "cep_suppressed_swaps_total",
            "Plan swaps declined as not amortizable",
            labels,
            self.suppressed_swaps,
        );
        reg.counter(
            "cep_replayed_events_total",
            "Events re-processed during plan swaps",
            labels,
            self.replayed_events,
        );
        reg.counter(
            "cep_replicated_events_total",
            "Extra deliveries from replicate-join broadcast routing",
            labels,
            self.replicated_events,
        );
        reg.counter(
            "cep_dedup_hits_total",
            "Duplicate matches suppressed by sharded-merge dedup",
            labels,
            self.dedup_hits,
        );
        reg.counter(
            "cep_plan_cache_hits_total",
            "Compiled-plan cache hits (program reused without recompiling)",
            labels,
            self.plan_cache_hits,
        );
        reg.counter(
            "cep_plan_cache_misses_total",
            "Compiled-plan cache misses (program lowered from scratch)",
            labels,
            self.plan_cache_misses,
        );
        reg.counter(
            "cep_index_probes_total",
            "Equality-join posting-list probes (delta engine)",
            labels,
            self.index_probes,
        );
        reg.counter(
            "cep_delta_updates_total",
            "Index list inserts + expirations (delta engine)",
            labels,
            self.delta_updates,
        );
        reg.counter(
            "cep_registered_queries_total",
            "Query registrations accepted by a multi-query registry",
            labels,
            self.registered_queries,
        );
        reg.counter(
            "cep_shared_fragments_total",
            "Branch subscriptions that reused an already-running fragment",
            labels,
            self.shared_fragments,
        );
        reg.counter(
            "cep_fanout_emits_total",
            "Matches fanned out from shared fragments to subscribed queries",
            labels,
            self.fanout_emits,
        );
        reg.histogram(
            "cep_event_ns",
            "Per-event processing time (ns, sampled)",
            labels,
            &self.event_ns,
        );
        reg.histogram(
            "cep_match_latency_ns",
            "Per-match detection latency (ns)",
            labels,
            &self.match_latency_ns,
        );
        reg.histogram(
            "cep_replay_ns",
            "Per-swap replay time (ns)",
            labels,
            &self.replay_ns,
        );
        reg.histogram(
            "cep_enumeration_ns",
            "Per-delta on-demand match-enumeration time (ns)",
            labels,
            &self.enumeration_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_are_monotone() {
        let mut m = EngineMetrics::new();
        m.record_live(5, 10);
        m.record_live(2, 3);
        assert_eq!(m.live_partial_matches, 2);
        assert_eq!(m.peak_partial_matches, 5);
        assert_eq!(m.peak_buffered_events, 10);
        assert!(m.peak_memory_bytes >= 5 * PARTIAL_MATCH_BYTES);
    }

    #[test]
    fn throughput_computation() {
        let mut m = EngineMetrics::new();
        m.events_processed = 1000;
        m.wall_time_ns = 500_000_000; // 0.5 s
        assert!((m.throughput_eps() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let m = EngineMetrics::new();
        assert_eq!(m.throughput_eps(), 0.0);
        assert_eq!(m.avg_latency_ms(), 0.0);
    }

    #[test]
    fn latency_average() {
        let mut m = EngineMetrics::new();
        m.matches_emitted = 4;
        m.match_latency_ns.record_n(2_000_000, 4); // 8 ms total
        assert_eq!(m.match_latency_ns_total(), 8_000_000);
        assert!((m.avg_latency_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles_survive_aggregation() {
        // One fast engine, one slow engine: the merged histogram keeps the
        // tail visible where the old summed counter flattened it.
        let mut fast = EngineMetrics::new();
        fast.match_latency_ns.record_n(1_000, 98);
        let mut slow = EngineMetrics::new();
        slow.match_latency_ns.record_n(40_000_000, 2);
        fast.merge(&slow);
        assert!(fast.match_latency_ns.p50() < 2_048);
        assert!(fast.match_latency_ns.p99() >= 40_000_000);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = EngineMetrics::new();
        a.events_processed = 100;
        a.matches_emitted = 3;
        a.partial_matches_created = 40;
        a.predicate_evaluations = 70;
        a.peak_partial_matches = 9;
        a.peak_buffered_events = 20;
        a.peak_memory_bytes = 4000;
        a.wall_time_ns = 1_000;
        a.match_latency_ns.record(500);
        let mut b = EngineMetrics::new();
        b.events_processed = 50;
        b.matches_emitted = 2;
        b.partial_matches_created = 10;
        b.predicate_evaluations = 30;
        b.peak_partial_matches = 4;
        b.peak_buffered_events = 33;
        b.peak_memory_bytes = 2500;
        b.wall_time_ns = 3_000;
        b.match_latency_ns.record(700);
        a.plan_swaps = 1;
        a.replayed_events = 20;
        a.replay_time_ns = 111;
        a.peak_retained_events = 12;
        a.selectivity_samples = 9;
        a.suppressed_swaps = 1;
        b.plan_swaps = 2;
        b.replayed_events = 30;
        b.replay_time_ns = 222;
        b.peak_retained_events = 40;
        b.selectivity_samples = 11;
        b.suppressed_swaps = 2;
        a.merge(&b);
        // Counters and latency sums add across shards.
        assert_eq!(a.events_processed, 150);
        assert_eq!(a.matches_emitted, 5);
        assert_eq!(a.partial_matches_created, 50);
        assert_eq!(a.predicate_evaluations, 100);
        assert_eq!(a.match_latency_ns_total(), 1_200);
        assert_eq!(a.match_latency_ns.count(), 2);
        // Adaptivity counters add too; the retained-window peak is a
        // per-shard maximum like the other peaks.
        assert_eq!(a.plan_swaps, 3);
        assert_eq!(a.replayed_events, 50);
        assert_eq!(a.replay_time_ns, 333);
        assert_eq!(a.peak_retained_events, 40);
        assert_eq!(a.selectivity_samples, 20);
        assert_eq!(a.suppressed_swaps, 3);
        // Peaks and wall time take the per-shard maximum.
        assert_eq!(a.peak_partial_matches, 9);
        assert_eq!(a.peak_buffered_events, 33);
        assert_eq!(a.peak_memory_bytes, 4000);
        assert_eq!(a.wall_time_ns, 3_000);
    }

    #[test]
    fn merge_with_zeroed_is_identity_on_counters() {
        let mut a = EngineMetrics::new();
        a.events_processed = 7;
        a.peak_partial_matches = 2;
        a.wall_time_ns = 10;
        a.plan_swaps = 4;
        a.replayed_events = 9;
        a.peak_retained_events = 3;
        let before = a.clone();
        a.merge(&EngineMetrics::new());
        assert_eq!(a.events_processed, before.events_processed);
        assert_eq!(a.peak_partial_matches, before.peak_partial_matches);
        assert_eq!(a.wall_time_ns, before.wall_time_ns);
        assert_eq!(a.plan_swaps, before.plan_swaps);
        assert_eq!(a.replayed_events, before.replayed_events);
        assert_eq!(a.peak_retained_events, before.peak_retained_events);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = EngineMetrics::new();
        a.matches_emitted = 1;
        let mut b = EngineMetrics::new();
        b.matches_emitted = 2;
        b.peak_partial_matches = 7;
        b.plan_swaps = 1;
        b.replayed_events = 5;
        b.selectivity_samples = 4;
        b.suppressed_swaps = 2;
        a.absorb(&b);
        assert_eq!(a.matches_emitted, 3);
        assert_eq!(a.peak_partial_matches, 7);
        assert_eq!(a.plan_swaps, 1);
        assert_eq!(a.replayed_events, 5);
        assert_eq!(a.selectivity_samples, 4);
        assert_eq!(a.suppressed_swaps, 2);
    }

    #[test]
    fn record_retained_tracks_peak() {
        let mut m = EngineMetrics::new();
        m.record_retained(8);
        m.record_retained(3);
        assert_eq!(m.retained_events, 3);
        assert_eq!(m.peak_retained_events, 8);
    }

    /// A histogram holding one sample of value `v` (so its post-merge
    /// `sum()` is as checkable as a plain counter).
    fn hist1(v: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        h.record(v);
        h
    }

    /// Every field set to a distinct value derived from `base`. Written as
    /// a full struct literal on purpose: adding a field to
    /// [`EngineMetrics`] breaks this helper until the merge/absorb
    /// coverage tests below are extended to the new counter — which is
    /// exactly when `merge`/`absorb` themselves must be extended too.
    fn filled(base: u64) -> EngineMetrics {
        EngineMetrics {
            events_processed: base + 1,
            events_relevant: base + 2,
            matches_emitted: base + 3,
            partial_matches_created: base + 4,
            live_partial_matches: (base + 5) as usize,
            peak_partial_matches: (base + 6) as usize,
            buffered_events: (base + 7) as usize,
            peak_buffered_events: (base + 8) as usize,
            peak_memory_bytes: (base + 9) as usize,
            predicate_evaluations: base + 10,
            wall_time_ns: base + 11,
            event_ns: hist1(base + 12),
            match_latency_ns: hist1(base + 13),
            plan_swaps: base + 14,
            replayed_events: base + 15,
            replay_time_ns: base + 16,
            replay_ns: hist1(base + 17),
            retained_events: (base + 18) as usize,
            peak_retained_events: (base + 19) as usize,
            selectivity_samples: base + 20,
            suppressed_swaps: base + 21,
            replicated_events: base + 22,
            dedup_hits: base + 23,
            plan_cache_hits: base + 24,
            plan_cache_misses: base + 25,
            index_probes: base + 26,
            delta_updates: base + 27,
            enumeration_ns: hist1(base + 28),
            registered_queries: base + 29,
            shared_fragments: base + 30,
            fanout_emits: base + 31,
        }
    }

    /// Number of fields `filled` covers; the canary below cross-checks it
    /// against the struct itself via its Debug rendering. The histogram
    /// fields count too: `LatencyHistogram`'s Debug is a single token
    /// without `": "`, so each one contributes exactly one pair.
    const FIELD_COUNT: usize = 31;

    #[test]
    fn debug_field_count_matches_coverage() {
        // `{:?}` renders one `name: value` pair per field and the values
        // are plain integers, so counting ": " occurrences counts fields.
        let rendered = format!("{:?}", EngineMetrics::new());
        assert_eq!(
            rendered.matches(": ").count(),
            FIELD_COUNT,
            "EngineMetrics gained or lost a field; update filled() and the \
             merge/absorb coverage tests: {rendered}"
        );
    }

    #[test]
    fn merge_covers_every_field() {
        let mut a = filled(0);
        a.merge(&filled(1000));
        // Counters and latency sums add across shards...
        assert_eq!(a.events_processed, 1002);
        assert_eq!(a.events_relevant, 1004);
        assert_eq!(a.matches_emitted, 1006);
        assert_eq!(a.partial_matches_created, 1008);
        assert_eq!(a.live_partial_matches, 1010);
        assert_eq!(a.buffered_events, 1014);
        assert_eq!(a.predicate_evaluations, 1020);
        assert_eq!(a.plan_swaps, 1028);
        assert_eq!(a.replayed_events, 1030);
        assert_eq!(a.replay_time_ns, 1032);
        assert_eq!(a.retained_events, 1036);
        assert_eq!(a.selectivity_samples, 1040);
        assert_eq!(a.suppressed_swaps, 1042);
        assert_eq!(a.replicated_events, 1044);
        assert_eq!(a.dedup_hits, 1046);
        assert_eq!(a.plan_cache_hits, 1048);
        assert_eq!(a.plan_cache_misses, 1050);
        assert_eq!(a.index_probes, 1052);
        assert_eq!(a.delta_updates, 1054);
        assert_eq!(a.registered_queries, 1058);
        assert_eq!(a.shared_fragments, 1060);
        assert_eq!(a.fanout_emits, 1062);
        // ...histograms merge bucket-wise (both samples survive)...
        assert_eq!(a.event_ns.count(), 2);
        assert_eq!(a.event_ns.sum(), 1024);
        assert_eq!(a.match_latency_ns.count(), 2);
        assert_eq!(a.match_latency_ns.sum(), 1026);
        assert_eq!(a.replay_ns.count(), 2);
        assert_eq!(a.replay_ns.sum(), 1034);
        assert_eq!(a.enumeration_ns.count(), 2);
        assert_eq!(a.enumeration_ns.sum(), 1056);
        // ...peaks and wall time take the per-shard maximum.
        assert_eq!(a.peak_partial_matches, 1006);
        assert_eq!(a.peak_buffered_events, 1008);
        assert_eq!(a.peak_memory_bytes, 1009);
        assert_eq!(a.wall_time_ns, 1011);
        assert_eq!(a.peak_retained_events, 1019);
    }

    #[test]
    fn absorb_covers_every_field() {
        let mut a = filled(0);
        a.absorb(&filled(1000));
        // Same-thread combination: everything sums, including peaks...
        assert_eq!(a.events_relevant, 1004);
        assert_eq!(a.matches_emitted, 1006);
        assert_eq!(a.partial_matches_created, 1008);
        assert_eq!(a.live_partial_matches, 1010);
        assert_eq!(a.peak_partial_matches, 1012);
        assert_eq!(a.buffered_events, 1014);
        assert_eq!(a.peak_buffered_events, 1016);
        assert_eq!(a.peak_memory_bytes, 1018);
        assert_eq!(a.predicate_evaluations, 1020);
        assert_eq!(a.plan_swaps, 1028);
        assert_eq!(a.replayed_events, 1030);
        assert_eq!(a.replay_time_ns, 1032);
        assert_eq!(a.retained_events, 1036);
        assert_eq!(a.peak_retained_events, 1038);
        assert_eq!(a.selectivity_samples, 1040);
        assert_eq!(a.suppressed_swaps, 1042);
        assert_eq!(a.replicated_events, 1044);
        assert_eq!(a.dedup_hits, 1046);
        assert_eq!(a.plan_cache_hits, 1048);
        assert_eq!(a.plan_cache_misses, 1050);
        assert_eq!(a.index_probes, 1052);
        assert_eq!(a.delta_updates, 1054);
        assert_eq!(a.registered_queries, 1058);
        assert_eq!(a.shared_fragments, 1060);
        assert_eq!(a.fanout_emits, 1062);
        // ...histograms merge bucket-wise...
        assert_eq!(a.event_ns.count(), 2);
        assert_eq!(a.event_ns.sum(), 1024);
        assert_eq!(a.match_latency_ns.count(), 2);
        assert_eq!(a.match_latency_ns.sum(), 1026);
        assert_eq!(a.replay_ns.count(), 2);
        assert_eq!(a.replay_ns.sum(), 1034);
        assert_eq!(a.enumeration_ns.count(), 2);
        assert_eq!(a.enumeration_ns.sum(), 1056);
        // ...except the harness-owned totals, which stay the caller's.
        assert_eq!(a.events_processed, 1);
        assert_eq!(a.wall_time_ns, 11);
    }

    #[test]
    fn export_renders_valid_prometheus_and_json() {
        let mut reg = MetricsRegistry::new();
        filled(0).export(&mut reg, &[("engine", "a")]);
        filled(1000).export(&mut reg, &[("engine", "b")]);
        let text = reg.render_prometheus();
        cep_obs::validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("cep_events_processed_total{engine=\"a\"} 1"));
        assert!(text.contains("cep_events_processed_total{engine=\"b\"} 1001"));
        assert!(text.contains("cep_match_latency_ns_count{engine=\"a\"} 1"));
        assert!(text.contains("cep_index_probes_total{engine=\"a\"} 26"));
        assert!(text.contains("cep_delta_updates_total{engine=\"b\"} 1027"));
        assert!(text.contains("cep_enumeration_ns_count{engine=\"a\"} 1"));
        assert!(text.contains("cep_registered_queries_total{engine=\"a\"} 29"));
        assert!(text.contains("cep_shared_fragments_total{engine=\"b\"} 1030"));
        assert!(text.contains("cep_fanout_emits_total{engine=\"a\"} 31"));
        // The JSON rendering parses back with the obs-side codec.
        cep_obs::json::parse(&reg.render_json()).expect("registry JSON parses");
    }
}
