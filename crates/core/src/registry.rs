//! Multi-query execution: a [`QueryRegistry`] runs many registered
//! queries over one stream, executing shared work once.
//!
//! Production CEP serves many users registering patterns over the *same*
//! streams. Registering N queries as N independent engines re-evaluates
//! every shared sub-pattern N times; the registry instead canonicalizes
//! each query's DNF branches by [`CompiledPattern::signature`] and keeps
//! one **fragment** (one engine) per distinct branch. A fragment shared
//! by several queries is evaluated once per event, and its matches fan
//! out to every subscribed query with per-query [`QueryId`] tagging —
//! the operator-sharing idea of Dossinger & Michel (arXiv:2104.07742)
//! and Valluri et al. (arXiv:cs/0202035) applied to compiled DNF
//! branches.
//!
//! Correctness contract: for every registered query, the registry's
//! tagged output is **byte-identical** — `(signature, emitted_at)` pairs
//! — to what an independent engine built from the same fragments would
//! emit. Two mechanisms preserve it:
//!
//! * **Type routing.** An event is only offered to fragments whose
//!   pattern uses its type, *except* fragments with negated elements:
//!   deferred (trailing-negation) emission stamps `emitted_at` with the
//!   engine's watermark, which advances on every processed event, so
//!   those fragments receive the full stream.
//! * **Per-query fan-out dedup.** A query with multiple branches
//!   deduplicates fanned-out matches exactly like
//!   [`crate::engine::MultiEngine`] (first branch in branch order wins,
//!   signature memory pruned on the same 256-event cadence), so a
//!   multi-branch query's output is identical to a `MultiEngine` over
//!   independently built branch engines.
//!
//! Set-level planning: fragments are deduplicated by signature before
//! any engine is built (shared fragments are planned once), lowered
//! predicate programs are shared through the PR 8
//! [`PlanCache`](crate::compiled::PlanCache), and
//! [`QueryRegistry::set_plan`] reports the sharing structure —
//! including maximal shared SEQ prefixes detected by
//! [`prefix_signature`] — so a planner-backed [`FragmentBuilder`] can
//! align evaluation orders across fragments that share a prefix.

use crate::compile::CompiledPattern;
use crate::compiled::{shared_plan_cache, PredicateProgram, SharedPlanCache};
use crate::engine::{Engine, EngineConfig};
use crate::error::CepError;
use crate::event::EventRef;
use crate::matches::Match;
use crate::metrics::EngineMetrics;
use crate::pattern::Pattern;
use cep_obs::{TraceRecord, Tracer};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Identifies a query registered with a [`QueryRegistry`]. Ids are
/// assigned sequentially and never reused, so an id stays unambiguous
/// across unregistrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Builds the engine for one distinct fragment (DNF branch).
///
/// The registry calls this exactly once per *distinct* branch signature
/// — this is where "shared fragments are planned once" lands: a
/// planner-backed implementation pays the planning cost once no matter
/// how many queries subscribe. `program` is the branch's lowered
/// predicate program from the registry's shared [`PlanCache`]
/// (`None` when compiled predicates are disabled); implementations
/// should thread it into the engine's `with_program` constructor.
///
/// [`PlanCache`]: crate::compiled::PlanCache
pub trait FragmentBuilder: Send + Sync {
    /// Builds a fresh engine evaluating `cp`.
    fn build_fragment(
        &self,
        cp: &CompiledPattern,
        program: Option<Arc<PredicateProgram>>,
    ) -> Result<Box<dyn Engine>, CepError>;
}

impl<F> FragmentBuilder for F
where
    F: Fn(&CompiledPattern, Option<Arc<PredicateProgram>>) -> Result<Box<dyn Engine>, CepError>
        + Send
        + Sync,
{
    fn build_fragment(
        &self,
        cp: &CompiledPattern,
        program: Option<Arc<PredicateProgram>>,
    ) -> Result<Box<dyn Engine>, CepError> {
        self(cp, program)
    }
}

/// Default capacity of a registry's shared predicate-program cache.
/// Larger than the facade's per-factory cache: a registry holds many
/// distinct fragments, not one pattern's branches.
const REGISTRY_PLAN_CACHE_CAP: usize = 256;

/// One distinct DNF branch under evaluation: one engine, shared by every
/// subscribed (query, branch) pair.
struct Fragment {
    cp: CompiledPattern,
    engine: Box<dyn Engine>,
    /// Live (query, branch) subscriptions; the fragment is torn down
    /// when this reaches zero.
    subscribers: usize,
    /// Whether the fragment must see every event regardless of type:
    /// true for patterns with negated elements, whose deferred-emission
    /// watermark advances on every processed event.
    route_all: bool,
    /// Per-event scratch buffer of freshly detected matches.
    staged: Vec<Match>,
}

/// One registered query: its branch subscriptions in branch order plus
/// the `MultiEngine`-mirroring dedup state for multi-branch queries.
struct QueryEntry {
    /// Fragment slot per DNF branch, in the pattern's branch order
    /// (duplicates allowed: identical branches subscribe twice).
    fragments: Vec<usize>,
    window: u64,
    /// Signature memory for multi-branch dedup (unused single-branch).
    seen: HashMap<Vec<(usize, Vec<u64>)>, u64>,
    /// Events offered to the registry while this query was live.
    events_processed: u64,
    /// Matches delivered to this query (post-dedup).
    matches_emitted: u64,
}

/// A multi-query engine: many registered queries over one stream, with
/// signature-deduplicated shared fragments executed once and per-query
/// fan-out. See the [module docs](self) for the sharing model and the
/// byte-identity contract.
pub struct QueryRegistry {
    builder: Arc<dyn FragmentBuilder>,
    config: EngineConfig,
    plan_cache: SharedPlanCache,
    tracer: Tracer,
    /// Fragment slots; `None` marks a retired slot (kept so stored slot
    /// indices stay stable).
    slots: Vec<Option<Fragment>>,
    by_sig: HashMap<u64, usize>,
    queries: BTreeMap<QueryId, QueryEntry>,
    next_id: u64,
    /// Registry-owned counters (`events_processed`, `wall_time_ns`,
    /// `registered_queries`, `shared_fragments`, `fanout_emits`); the
    /// rest of the exported view is absorbed from fragment engines.
    own: EngineMetrics,
    /// Final metrics of torn-down fragments (live-state gauges zeroed),
    /// so the aggregate view stays monotone across unregistrations.
    retired: EngineMetrics,
}

impl QueryRegistry {
    /// A registry building fragments with `builder` under `config`, with
    /// a fresh shared predicate-program cache.
    pub fn new(builder: Arc<dyn FragmentBuilder>, config: EngineConfig) -> QueryRegistry {
        Self::with_plan_cache(builder, config, shared_plan_cache(REGISTRY_PLAN_CACHE_CAP))
    }

    /// Like [`new`](QueryRegistry::new) but sharing an external plan
    /// cache — per-shard registry instances instantiated from one
    /// [`RegistrySpec`] lower each fragment's predicates only once
    /// across the whole fleet.
    pub fn with_plan_cache(
        builder: Arc<dyn FragmentBuilder>,
        config: EngineConfig,
        plan_cache: SharedPlanCache,
    ) -> QueryRegistry {
        QueryRegistry {
            builder,
            config,
            plan_cache,
            tracer: Tracer::disabled(),
            slots: Vec::new(),
            by_sig: HashMap::new(),
            queries: BTreeMap::new(),
            next_id: 0,
            own: EngineMetrics::new(),
            retired: EngineMetrics::new(),
        }
    }

    /// Routes registration/unregistration trace records to `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Registers a pattern, compiling it to DNF branches first.
    pub fn register(&mut self, pattern: &Pattern) -> Result<QueryId, CepError> {
        let branches = CompiledPattern::compile(pattern)?;
        self.register_compiled(branches, pattern.window)
    }

    /// Registers a query from pre-compiled DNF branches sharing `window`.
    ///
    /// Branches that match an already-running fragment's signature
    /// subscribe to it; the rest get fresh engines from the
    /// [`FragmentBuilder`]. On error nothing is registered (engine
    /// builds happen before any registry state changes).
    pub fn register_compiled(
        &mut self,
        branches: Vec<CompiledPattern>,
        window: u64,
    ) -> Result<QueryId, CepError> {
        if branches.is_empty() {
            return Err(CepError::Pattern(
                "cannot register a query with no DNF branches".into(),
            ));
        }
        // Phase 1 (fallible, no state changes): resolve each branch to an
        // existing slot or a freshly built engine. Duplicate branches
        // *within* this registration must also share one engine.
        enum Resolved {
            Existing(usize),
            New(usize /* index into `built` */),
        }
        let mut built: Vec<(CompiledPattern, Box<dyn Engine>)> = Vec::new();
        let mut new_sigs: HashMap<u64, usize> = HashMap::new();
        let mut resolved = Vec::with_capacity(branches.len());
        let mut shared = 0u64;
        for cp in &branches {
            let sig = cp.signature();
            if let Some(&slot) = self.by_sig.get(&sig) {
                resolved.push(Resolved::Existing(slot));
                shared += 1;
            } else if let Some(&bi) = new_sigs.get(&sig) {
                resolved.push(Resolved::New(bi));
                shared += 1;
            } else {
                let (program, hits, misses) = self.fetch_program(cp);
                let mut engine = self.builder.build_fragment(cp, program)?;
                // Surface cache effectiveness through the normal metrics
                // pipeline, exactly as the facade factories do.
                engine.metrics_mut().plan_cache_hits = hits;
                engine.metrics_mut().plan_cache_misses = misses;
                new_sigs.insert(sig, built.len());
                resolved.push(Resolved::New(built.len()));
                built.push((cp.clone(), engine));
            }
        }
        // Phase 2 (infallible): commit fragments and the query entry.
        let mut slot_of_built = vec![usize::MAX; built.len()];
        for (bi, (cp, engine)) in built.into_iter().enumerate() {
            let route_all = !cp.negated.is_empty();
            let fragment = Fragment {
                cp,
                engine,
                subscribers: 0,
                route_all,
                staged: Vec::new(),
            };
            let slot = match self.slots.iter().position(Option::is_none) {
                Some(free) => {
                    self.slots[free] = Some(fragment);
                    free
                }
                None => {
                    self.slots.push(Some(fragment));
                    self.slots.len() - 1
                }
            };
            self.by_sig.insert(
                self.slots[slot]
                    .as_ref()
                    .expect("just placed")
                    .cp
                    .signature(),
                slot,
            );
            slot_of_built[bi] = slot;
        }
        let fragments: Vec<usize> = resolved
            .iter()
            .map(|r| match r {
                Resolved::Existing(slot) => *slot,
                Resolved::New(bi) => slot_of_built[*bi],
            })
            .collect();
        for &slot in &fragments {
            self.slots[slot].as_mut().expect("live slot").subscribers += 1;
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let branch_count = fragments.len() as u64;
        self.queries.insert(
            id,
            QueryEntry {
                fragments,
                window,
                seen: HashMap::new(),
                events_processed: 0,
                matches_emitted: 0,
            },
        );
        self.own.registered_queries += 1;
        self.own.shared_fragments += shared;
        let live = self.fragment_count() as u64;
        self.tracer.emit_with(|| TraceRecord::QueryRegistered {
            query_id: id.0,
            branches: branch_count,
            shared,
            fragments: live,
        });
        Ok(id)
    }

    /// Unregisters a query; fragments it was the last subscriber of are
    /// torn down (their final counters are folded into the registry
    /// aggregate). Returns `false` for unknown ids.
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let Some(entry) = self.queries.remove(&id) else {
            return false;
        };
        let mut retired = 0u64;
        for slot in entry.fragments {
            let frag = self.slots[slot].as_mut().expect("subscribed slot is live");
            frag.subscribers -= 1;
            if frag.subscribers == 0 {
                let frag = self.slots[slot].take().expect("live slot");
                self.by_sig.remove(&frag.cp.signature());
                let mut last = frag.engine.metrics().clone();
                // The engine is gone: its live-state gauges must not
                // linger in the monotone aggregate.
                last.live_partial_matches = 0;
                last.buffered_events = 0;
                last.retained_events = 0;
                self.retired.absorb(&last);
                retired += 1;
            }
        }
        let live = self.fragment_count() as u64;
        self.tracer.emit_with(|| TraceRecord::QueryUnregistered {
            query_id: id.0,
            retired_fragments: retired,
            fragments: live,
        });
        true
    }

    /// Offers one event to every live fragment (each evaluated at most
    /// once, and only if the event's type is relevant to it — see the
    /// [module docs](self)) and fans freshly detected matches out to the
    /// subscribed queries, tagged with their [`QueryId`].
    pub fn process(&mut self, event: &EventRef, out: &mut Vec<(QueryId, Match)>) {
        self.own.events_processed += 1;
        for frag in self.slots.iter_mut().flatten() {
            frag.staged.clear();
            if frag.route_all || frag.cp.uses_type(event.type_id) {
                frag.engine.process(event, &mut frag.staged);
            }
        }
        for (id, q) in self.queries.iter_mut() {
            q.events_processed += 1;
            let before = out.len();
            if q.fragments.len() == 1 {
                let frag = self.slots[q.fragments[0]].as_ref().expect("live slot");
                for m in &frag.staged {
                    out.push((*id, m.clone()));
                }
            } else {
                // Mirror `MultiEngine`: branch order, first sighting of a
                // signature wins, memory pruned every 256 events.
                for &slot in &q.fragments {
                    let frag = self.slots[slot].as_ref().expect("live slot");
                    for m in &frag.staged {
                        if q.seen.insert(m.signature(), m.max_ts()).is_none() {
                            out.push((*id, m.clone()));
                        }
                    }
                }
                if q.events_processed.is_multiple_of(256) {
                    let horizon = event.ts.saturating_sub(q.window);
                    q.seen.retain(|_, &mut ts| ts >= horizon);
                }
            }
            let emitted = (out.len() - before) as u64;
            q.matches_emitted += emitted;
            self.own.fanout_emits += emitted;
        }
    }

    /// Flushes every fragment (releasing deferred trailing-negation
    /// matches) and fans the results out like
    /// [`process`](QueryRegistry::process).
    pub fn flush(&mut self, out: &mut Vec<(QueryId, Match)>) {
        for frag in self.slots.iter_mut().flatten() {
            frag.staged.clear();
            frag.engine.flush(&mut frag.staged);
        }
        for (id, q) in self.queries.iter_mut() {
            let before = out.len();
            if q.fragments.len() == 1 {
                let frag = self.slots[q.fragments[0]].as_ref().expect("live slot");
                for m in &frag.staged {
                    out.push((*id, m.clone()));
                }
            } else {
                for &slot in &q.fragments {
                    let frag = self.slots[slot].as_ref().expect("live slot");
                    for m in &frag.staged {
                        if q.seen.insert(m.signature(), m.max_ts()).is_none() {
                            out.push((*id, m.clone()));
                        }
                    }
                }
            }
            let emitted = (out.len() - before) as u64;
            q.matches_emitted += emitted;
            self.own.fanout_emits += emitted;
        }
    }

    /// Processes a whole stream then flushes, collecting each query's
    /// matches in emission order.
    pub fn run(&mut self, stream: &[EventRef]) -> RegistryRunResult {
        let start = Instant::now();
        let mut per_query: BTreeMap<QueryId, Vec<Match>> =
            self.queries.keys().map(|&id| (id, Vec::new())).collect();
        let mut out = Vec::new();
        for event in stream {
            self.process(event, &mut out);
            for (id, m) in out.drain(..) {
                per_query.entry(id).or_default().push(m);
            }
        }
        self.flush(&mut out);
        for (id, m) in out.drain(..) {
            per_query.entry(id).or_default().push(m);
        }
        self.own.wall_time_ns += start.elapsed().as_nanos() as u64;
        RegistryRunResult {
            per_query,
            metrics: self.metrics(),
        }
    }

    /// The registry-wide metrics view: fragment engines' counters
    /// absorbed **once each** (shared work counts once, however many
    /// queries subscribe), plus retired fragments' final counters, with
    /// the registry-owned totals (`events_processed`, `wall_time_ns`,
    /// `registered_queries`, `shared_fragments`, `fanout_emits`) on top.
    pub fn metrics(&self) -> EngineMetrics {
        let mut agg = self.retired.clone();
        for frag in self.slots.iter().flatten() {
            agg.absorb(frag.engine.metrics());
        }
        agg.events_processed = self.own.events_processed;
        agg.wall_time_ns = self.own.wall_time_ns;
        agg.registered_queries = self.own.registered_queries;
        agg.shared_fragments = self.own.shared_fragments;
        agg.fanout_emits = self.own.fanout_emits;
        agg
    }

    /// One query's metrics view, mirroring what a `MultiEngine` over the
    /// query's branch engines would report: subscribed fragments'
    /// counters absorbed (shared work appears in *every* subscriber's
    /// view), `events_processed` and post-dedup `matches_emitted` the
    /// query's own. `None` for unknown ids.
    pub fn query_metrics(&self, id: QueryId) -> Option<EngineMetrics> {
        let q = self.queries.get(&id)?;
        let mut agg = EngineMetrics::new();
        for &slot in &q.fragments {
            let frag = self.slots[slot].as_ref().expect("live slot");
            agg.absorb(frag.engine.metrics());
        }
        agg.events_processed = q.events_processed;
        agg.matches_emitted = q.matches_emitted;
        Some(agg)
    }

    /// Live registered query ids, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.keys().copied().collect()
    }

    /// Whether `id` is currently registered.
    pub fn contains(&self, id: QueryId) -> bool {
        self.queries.contains_key(&id)
    }

    /// Number of live registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of distinct live fragments (shared engines).
    pub fn fragment_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The set-level plan report for the currently registered queries:
    /// sharing counts plus maximal shared SEQ prefixes across distinct
    /// fragments. See [`SetPlanReport`].
    pub fn set_plan(&self) -> SetPlanReport {
        let branch_subscriptions: usize = self.queries.values().map(|q| q.fragments.len()).sum();
        let live: Vec<&CompiledPattern> = self.slots.iter().flatten().map(|f| &f.cp).collect();
        SetPlanReport {
            queries: self.queries.len(),
            branch_subscriptions,
            distinct_fragments: live.len(),
            shared_subscriptions: branch_subscriptions - live.len().min(branch_subscriptions),
            prefix_groups: shared_prefix_groups(&live),
        }
    }
}

/// The outcome of [`QueryRegistry::run`].
pub struct RegistryRunResult {
    /// Matches per query in emission order (every registered query has
    /// an entry, possibly empty).
    pub per_query: BTreeMap<QueryId, Vec<Match>>,
    /// The registry-wide metrics snapshot ([`QueryRegistry::metrics`]).
    pub metrics: EngineMetrics,
}

impl QueryRegistry {
    /// Fetches the branch's lowered predicate program from the shared
    /// cache (when compiled predicates are enabled), warming it for
    /// every later subscriber and sibling registry. Returns the program
    /// plus the lookup's hit/miss delta, to be stamped onto the fresh
    /// fragment engine's metrics.
    fn fetch_program(&self, cp: &CompiledPattern) -> (Option<Arc<PredicateProgram>>, u64, u64) {
        if !self.config.compiled_predicates {
            return (None, 0, 0);
        }
        let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
        let (h0, m0) = (cache.hits(), cache.misses());
        let program = cache.get_or_compile(cp);
        (Some(program), cache.hits() - h0, cache.misses() - m0)
    }
}

/// A serializable-enough description of a query set: compiled branches
/// plus the fragment builder and config, from which identical
/// [`QueryRegistry`] instances can be stamped out — the multi-query
/// analogue of [`crate::engine::EngineFactory`], consumed by
/// `cep-shard`'s multi-query layout (one registry per worker). All
/// instances share one predicate-program cache, so each fragment's
/// predicates are lowered once across the fleet.
pub struct RegistrySpec {
    queries: Vec<(Vec<CompiledPattern>, u64)>,
    builder: Arc<dyn FragmentBuilder>,
    config: EngineConfig,
    plan_cache: SharedPlanCache,
}

impl RegistrySpec {
    /// An empty spec building fragments with `builder` under `config`.
    pub fn new(builder: Arc<dyn FragmentBuilder>, config: EngineConfig) -> RegistrySpec {
        RegistrySpec {
            queries: Vec::new(),
            builder,
            config,
            plan_cache: shared_plan_cache(REGISTRY_PLAN_CACHE_CAP),
        }
    }

    /// Adds a pattern (compiled to DNF branches). The returned id is the
    /// one every instantiated registry assigns this query.
    pub fn add(&mut self, pattern: &Pattern) -> Result<QueryId, CepError> {
        let branches = CompiledPattern::compile(pattern)?;
        Ok(self.add_compiled(branches, pattern.window))
    }

    /// Adds a query from pre-compiled branches sharing `window`.
    pub fn add_compiled(&mut self, branches: Vec<CompiledPattern>, window: u64) -> QueryId {
        let id = QueryId(self.queries.len() as u64);
        self.queries.push((branches, window));
        id
    }

    /// Number of queries in the spec.
    pub fn queries(&self) -> usize {
        self.queries.len()
    }

    /// Every branch of every query (with repetition), for routing-policy
    /// soundness validation.
    pub fn branches(&self) -> impl Iterator<Item = &CompiledPattern> {
        self.queries.iter().flat_map(|(bs, _)| bs.iter())
    }

    /// The widest query window in the spec (0 when empty).
    pub fn max_window(&self) -> u64 {
        self.queries.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }

    /// Builds a fresh registry with every query registered, in spec
    /// order (so ids match the ones [`add`](RegistrySpec::add)
    /// returned).
    pub fn instantiate(&self) -> Result<QueryRegistry, CepError> {
        let mut registry = QueryRegistry::with_plan_cache(
            self.builder.clone(),
            self.config.clone(),
            self.plan_cache.clone(),
        );
        for (branches, window) in &self.queries {
            registry.register_compiled(branches.clone(), *window)?;
        }
        Ok(registry)
    }
}

/// Stable signature of the first `k` elements of a SEQ branch: the
/// sub-pattern hash behind shared-prefix detection. Two branches with
/// equal `prefix_signature(_, k)` have identical first-`k` elements
/// (positions, types, Kleene flags), identical predicates *within* those
/// elements, and the same window and selection strategy — so a planner
/// may evaluate the shared prefix in the same order for both.
///
/// `None` for non-SEQ branches, branches with negated elements, or
/// `k` outside `2..=n` (prefixes shorter than 2 share nothing worth
/// aligning; `k == n` is the whole branch, which fragment signatures
/// already canonicalize).
pub fn prefix_signature(cp: &CompiledPattern, k: usize) -> Option<u64> {
    use crate::compile::NaryOp;
    use crate::compiled::{cmp_op_tag, write_operand, SigHasher};
    if cp.op != NaryOp::Seq || !cp.negated.is_empty() || k < 2 || k >= cp.n() {
        return None;
    }
    let prefix = &cp.elements[..k];
    let positions: Vec<usize> = prefix.iter().map(|e| e.position).collect();
    let contained = |pos: usize| positions.contains(&pos);
    let mut h = SigHasher::new();
    h.write_u8(0xF1); // prefix-hash domain tag, disjoint from signature()'s op byte

    h.write_u64(k as u64);
    for e in prefix {
        h.write_u64(e.position as u64);
        h.write_u64(e.event_type.0 as u64);
        h.write_u8(e.kleene as u8);
    }
    for p in &cp.predicates {
        let inside = [p.left.position(), p.right.position()]
            .into_iter()
            .flatten()
            .all(contained);
        if !inside {
            continue;
        }
        write_operand(&mut h, &p.left);
        h.write_u8(cmp_op_tag(p.op));
        write_operand(&mut h, &p.right);
    }
    h.write_u64(cp.window);
    h.write_u8(match cp.strategy {
        crate::selection::SelectionStrategy::SkipTillAnyMatch => 0,
        crate::selection::SelectionStrategy::SkipTillNextMatch => 1,
        crate::selection::SelectionStrategy::StrictContiguity => 2,
        crate::selection::SelectionStrategy::PartitionContiguity => 3,
    });
    Some(h.finish())
}

/// A group of distinct fragments sharing a maximal SEQ prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixGroup {
    /// Shared prefix length in elements (≥ 2).
    pub len: usize,
    /// The shared [`prefix_signature`].
    pub signature: u64,
    /// Distinct fragments in the group (≥ 2).
    pub fragments: usize,
}

/// The set-level plan report: how much of the registered query set is
/// shared, produced by [`QueryRegistry::set_plan`].
#[derive(Debug, Clone)]
pub struct SetPlanReport {
    /// Live registered queries.
    pub queries: usize,
    /// Total branch subscriptions across queries (with repetition).
    pub branch_subscriptions: usize,
    /// Distinct fragments actually executing.
    pub distinct_fragments: usize,
    /// Subscriptions served by an already-shared fragment
    /// (`branch_subscriptions - distinct_fragments`).
    pub shared_subscriptions: usize,
    /// Maximal shared SEQ prefixes across *distinct* fragments, longest
    /// first: sharing below full-fragment granularity that a
    /// planner-backed builder can exploit by aligning prefix evaluation
    /// orders.
    pub prefix_groups: Vec<PrefixGroup>,
}

impl SetPlanReport {
    /// Branch subscriptions per executing fragment — 1.0 for a
    /// zero-overlap query set, growing with sharing.
    pub fn sharing_ratio(&self) -> f64 {
        if self.distinct_fragments == 0 {
            return 1.0;
        }
        self.branch_subscriptions as f64 / self.distinct_fragments as f64
    }
}

/// Maximal shared-prefix groups among distinct fragments: all `(k,
/// signature)` groups with ≥ 2 members, minus those whose member set is
/// identical to a longer group's (they add no information — sharing a
/// `k+1`-prefix implies sharing the `k`-prefix). Sorted longest first,
/// then by signature for determinism.
fn shared_prefix_groups(fragments: &[&CompiledPattern]) -> Vec<PrefixGroup> {
    let mut groups: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    for (idx, cp) in fragments.iter().enumerate() {
        for k in 2..cp.n() {
            if let Some(sig) = prefix_signature(cp, k) {
                groups.entry((k, sig)).or_default().push(idx);
            }
        }
    }
    let mut shared: Vec<((usize, u64), Vec<usize>)> = groups
        .into_iter()
        .filter(|(_, members)| members.len() >= 2)
        .collect();
    shared.sort_by(|a, b| b.0 .0.cmp(&a.0 .0).then(a.0 .1.cmp(&b.0 .1)));
    let mut kept: Vec<PrefixGroup> = Vec::new();
    let mut kept_members: Vec<(usize, Vec<usize>)> = Vec::new();
    for ((k, sig), mut members) in shared {
        members.sort_unstable();
        let dominated = kept_members
            .iter()
            .any(|(kk, mm)| *kk > k && *mm == members);
        if dominated {
            continue;
        }
        kept.push(PrefixGroup {
            len: k,
            signature: sig,
            fragments: members.len(),
        });
        kept_members.push((k, members));
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_to_completion;
    use crate::event::{Event, TypeId};
    use crate::naive::NaiveEngine;
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};
    use crate::stream::StreamBuilder;
    use crate::value::Value;

    /// Fragment builder over the naive oracle (the only engine cep-core
    /// itself ships).
    fn naive_builder(cfg: &EngineConfig) -> Arc<dyn FragmentBuilder> {
        let cfg = cfg.clone();
        Arc::new(
            move |cp: &CompiledPattern, _program: Option<Arc<PredicateProgram>>| {
                Ok(Box::new(NaiveEngine::new(cp.clone(), cfg.clone())) as Box<dyn Engine>)
            },
        )
    }

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    /// SEQ(a, b) within `window`, optionally with an a.0 < b.0 predicate.
    fn seq_ab(window: u64, ta: u32, tb: u32, pred: bool) -> Pattern {
        let mut b = PatternBuilder::new(window);
        let a = b.event(t(ta), "a");
        let c = b.event(t(tb), "b");
        if pred {
            b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        }
        b.seq([a, c]).unwrap()
    }

    /// SEQ(a, b, c) over types `(ta, tb, tc)` with a.0 < b.0.
    fn seq_abc(window: u64, ta: u32, tb: u32, tc: u32) -> Pattern {
        let mut b = PatternBuilder::new(window);
        let a = b.event(t(ta), "a");
        let x = b.event(t(tb), "b");
        let c = b.event(t(tc), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, x.pos(), 0));
        b.seq([a, x, c]).unwrap()
    }

    /// SEQ(a, NOT n, b): trailing-interval negation exercising deferred
    /// emission (and thus route-all delivery).
    fn seq_with_not(window: u64, ta: u32, tn: u32, tb: u32) -> Pattern {
        let mut b = PatternBuilder::new(window);
        let a = b.event(t(ta), "a");
        let n = b.event(t(tn), "n");
        let c = b.event(t(tb), "b");
        let exprs = vec![b.expr(a), b.not(n), b.expr(c)];
        b.seq_exprs(exprs).unwrap()
    }

    fn stream(raw: &[(u32, u64, i64)]) -> Vec<EventRef> {
        let mut sb = StreamBuilder::new();
        for &(tid, ts, x) in raw {
            sb.push(Event::new(t(tid), ts, vec![Value::Int(x)]));
        }
        sb.build()
    }

    fn mixed_stream() -> Vec<EventRef> {
        // Types 0..4, some ts ties, varying attribute values.
        let mut raw = Vec::new();
        let mut ts = 0;
        for i in 0..200i64 {
            ts += (i % 3) as u64;
            raw.push(((i % 5) as u32, ts, (i * 7) % 13 - 6));
        }
        stream(&raw)
    }

    type MatchKey = (Vec<(usize, Vec<u64>)>, u64);

    fn keyed(ms: &[Match]) -> Vec<MatchKey> {
        let mut ks: Vec<_> = ms.iter().map(|m| (m.signature(), m.emitted_at)).collect();
        ks.sort();
        ks
    }

    /// Registry output per query must be byte-identical to independent
    /// naive engines over the same branches.
    fn assert_registry_matches_independent(patterns: &[Pattern]) {
        let cfg = EngineConfig::default();
        let mut registry = QueryRegistry::new(naive_builder(&cfg), cfg.clone());
        let ids: Vec<QueryId> = patterns
            .iter()
            .map(|p| registry.register(p).unwrap())
            .collect();
        let stream = mixed_stream();
        let result = registry.run(&stream);
        for (p, id) in patterns.iter().zip(&ids) {
            let branches = CompiledPattern::compile(p).unwrap();
            let expected = if branches.len() == 1 {
                let mut e = NaiveEngine::new(branches[0].clone(), cfg.clone());
                run_to_completion(&mut e, &stream, true).matches
            } else {
                let engines: Vec<Box<dyn Engine>> = branches
                    .into_iter()
                    .map(|cp| Box::new(NaiveEngine::new(cp, cfg.clone())) as Box<dyn Engine>)
                    .collect();
                let mut multi = crate::engine::MultiEngine::new(engines, p.window);
                run_to_completion(&mut multi, &stream, true).matches
            };
            assert_eq!(
                keyed(&result.per_query[id]),
                keyed(&expected),
                "query {id} diverged from its independent engine"
            );
        }
    }

    #[test]
    fn duplicate_registration_shares_one_fragment() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        let p = seq_ab(10, 0, 1, true);
        let q1 = reg.register(&p).unwrap();
        let q2 = reg.register(&p).unwrap();
        assert_ne!(q1, q2, "same pattern twice still gets distinct ids");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.fragment_count(), 1, "identical branches share");
        let m = reg.metrics();
        assert_eq!(m.registered_queries, 2);
        assert_eq!(m.shared_fragments, 1);
        // Both queries receive every match of the shared fragment.
        let result = reg.run(&mixed_stream());
        assert!(!result.per_query[&q1].is_empty());
        assert_eq!(keyed(&result.per_query[&q1]), keyed(&result.per_query[&q2]));
        assert_eq!(
            result.metrics.fanout_emits,
            2 * result.per_query[&q1].len() as u64
        );
    }

    #[test]
    fn zero_overlap_set_degrades_to_independent_execution() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        reg.register(&seq_ab(10, 0, 1, true)).unwrap();
        reg.register(&seq_ab(10, 2, 3, false)).unwrap();
        reg.register(&seq_ab(7, 1, 4, true)).unwrap();
        assert_eq!(reg.fragment_count(), 3, "no sharing possible");
        let report = reg.set_plan();
        assert_eq!(report.shared_subscriptions, 0);
        assert!((report.sharing_ratio() - 1.0).abs() < 1e-12);
        assert_registry_matches_independent(&[
            seq_ab(10, 0, 1, true),
            seq_ab(10, 2, 3, false),
            seq_ab(7, 1, 4, true),
        ]);
    }

    #[test]
    fn overlapping_set_is_byte_identical_per_query() {
        // 8 registrations over 4 distinct patterns, including negation
        // (deferred emission) and a disjunction (MultiEngine dedup).
        let or_pattern = {
            let mut b2 = PatternBuilder::new(9);
            let a2 = b2.event(t(0), "a");
            let c2 = b2.event(t(1), "b");
            let d2 = b2.event(t(1), "c");
            let e2 = b2.event(t(2), "d");
            let left = PatternExprHelpers::seq2(&b2, a2, c2);
            let right = PatternExprHelpers::seq2(&b2, d2, e2);
            b2.or_exprs(vec![left, right]).unwrap()
        };
        let patterns = vec![
            seq_ab(10, 0, 1, true),
            seq_ab(10, 0, 1, true), // duplicate
            seq_with_not(8, 0, 2, 1),
            or_pattern.clone(),
            seq_abc(10, 0, 1, 2),
            seq_ab(10, 0, 1, false),
            or_pattern,
            seq_with_not(8, 0, 2, 1), // duplicate
        ];
        assert_registry_matches_independent(&patterns);
    }

    /// Helper for building SEQ sub-expressions inside an OR.
    struct PatternExprHelpers;
    impl PatternExprHelpers {
        fn seq2(
            b: &PatternBuilder,
            x: crate::pattern::Ev,
            y: crate::pattern::Ev,
        ) -> crate::pattern::PatternExpr {
            crate::pattern::PatternExpr::Seq(vec![b.expr(x), b.expr(y)])
        }
    }

    #[test]
    fn unregister_mid_stream_leaves_remaining_queries_byte_identical() {
        let cfg = EngineConfig::default();
        let p_keep = seq_ab(10, 0, 1, true);
        let p_drop = seq_ab(10, 0, 1, false);
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg.clone());
        let keep = reg.register(&p_keep).unwrap();
        let drop_id = reg.register(&p_drop).unwrap();
        let stream = mixed_stream();
        let mut out = Vec::new();
        let mut kept_matches = Vec::new();
        for (i, e) in stream.iter().enumerate() {
            if i == stream.len() / 2 {
                assert!(reg.unregister(drop_id));
                assert!(!reg.contains(drop_id));
            }
            reg.process(e, &mut out);
            for (id, m) in out.drain(..) {
                if id == keep {
                    kept_matches.push(m);
                }
            }
        }
        reg.flush(&mut out);
        for (id, m) in out.drain(..) {
            if id == keep {
                kept_matches.push(m);
            }
        }
        let cp = CompiledPattern::compile_single(&p_keep).unwrap();
        let mut independent = NaiveEngine::new(cp, cfg);
        let expected = run_to_completion(&mut independent, &stream, true).matches;
        assert_eq!(keyed(&kept_matches), keyed(&expected));
    }

    #[test]
    fn unregister_retires_exclusive_fragments_only() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        let shared = seq_ab(10, 0, 1, true);
        let q1 = reg.register(&shared).unwrap();
        let _q2 = reg.register(&shared).unwrap();
        let q3 = reg.register(&seq_ab(10, 2, 3, false)).unwrap();
        assert_eq!(reg.fragment_count(), 2);
        // q1 leaves: the shared fragment survives (q2 still subscribed).
        assert!(reg.unregister(q1));
        assert_eq!(reg.fragment_count(), 2);
        // q3 leaves: its exclusive fragment is retired.
        let before = reg.metrics();
        assert!(reg.unregister(q3));
        assert_eq!(reg.fragment_count(), 1);
        let after = reg.metrics();
        assert!(
            after.events_relevant >= before.events_relevant
                && after.predicate_evaluations >= before.predicate_evaluations,
            "retired fragment counters stay in the aggregate"
        );
        assert!(!reg.unregister(q3), "double unregister is a no-op");
    }

    #[test]
    fn register_failure_leaves_registry_unchanged() {
        let cfg = EngineConfig::default();
        let flaky: Arc<dyn FragmentBuilder> = {
            let cfg = cfg.clone();
            Arc::new(
                move |cp: &CompiledPattern, _p: Option<Arc<PredicateProgram>>| {
                    if cp.n() >= 3 {
                        return Err(CepError::Plan("no engine for wide branches".into()));
                    }
                    Ok(Box::new(NaiveEngine::new(cp.clone(), cfg.clone())) as Box<dyn Engine>)
                },
            )
        };
        let mut reg = QueryRegistry::new(flaky, cfg);
        reg.register(&seq_ab(10, 0, 1, true)).unwrap();
        assert_eq!(reg.fragment_count(), 1);
        let err = reg.register(&seq_abc(10, 0, 1, 2));
        assert!(err.is_err());
        assert_eq!(reg.len(), 1, "failed registration left no query behind");
        assert_eq!(reg.fragment_count(), 1, "and no orphan fragment");
    }

    #[test]
    fn per_query_metrics_mirror_subscriptions() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        let p = seq_ab(10, 0, 1, true);
        let q1 = reg.register(&p).unwrap();
        let q2 = reg.register(&p).unwrap();
        let stream = mixed_stream();
        let result = reg.run(&stream);
        let m1 = reg.query_metrics(q1).unwrap();
        let m2 = reg.query_metrics(q2).unwrap();
        assert_eq!(m1.events_processed, stream.len() as u64);
        assert_eq!(m1.matches_emitted, result.per_query[&q1].len() as u64);
        // Shared fragment: both views absorb the same engine counters.
        assert_eq!(m1.predicate_evaluations, m2.predicate_evaluations);
        // Registry-level view counts the shared work once.
        let total = reg.metrics();
        assert_eq!(total.predicate_evaluations, m1.predicate_evaluations);
        assert!(reg.query_metrics(QueryId(999)).is_none());
    }

    #[test]
    fn type_routing_skips_irrelevant_fragments() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg.clone());
        let q = reg.register(&seq_ab(10, 0, 1, true)).unwrap();
        let stream = mixed_stream(); // types 0..4; only 0 and 1 relevant
        let result = reg.run(&stream);
        let qm = reg.query_metrics(q).unwrap();
        assert!(
            qm.events_relevant < stream.len() as u64,
            "fragment only saw its own types"
        );
        // Output still identical to an engine fed the full stream.
        let cp = CompiledPattern::compile_single(&seq_ab(10, 0, 1, true)).unwrap();
        let mut ind = NaiveEngine::new(cp, cfg);
        let expected = run_to_completion(&mut ind, &stream, true).matches;
        assert_eq!(keyed(&result.per_query[&q]), keyed(&expected));
    }

    #[test]
    fn set_plan_detects_shared_prefixes() {
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        // Same (a, b) prefix with predicate, different third element.
        reg.register(&seq_abc(10, 0, 1, 2)).unwrap();
        reg.register(&seq_abc(10, 0, 1, 3)).unwrap();
        reg.register(&seq_ab(10, 4, 2, false)).unwrap();
        let report = reg.set_plan();
        assert_eq!(report.queries, 3);
        assert_eq!(report.distinct_fragments, 3);
        assert_eq!(report.prefix_groups.len(), 1, "{:?}", report.prefix_groups);
        assert_eq!(report.prefix_groups[0].len, 2);
        assert_eq!(report.prefix_groups[0].fragments, 2);
    }

    #[test]
    fn prefix_signature_contract() {
        let p1 = CompiledPattern::compile_single(&seq_abc(10, 0, 1, 2)).unwrap();
        let p2 = CompiledPattern::compile_single(&seq_abc(10, 0, 1, 3)).unwrap();
        let p3 = CompiledPattern::compile_single(&seq_abc(11, 0, 1, 2)).unwrap();
        assert_eq!(prefix_signature(&p1, 2), prefix_signature(&p2, 2));
        assert_ne!(
            prefix_signature(&p1, 2),
            prefix_signature(&p3, 2),
            "window differences break prefix sharing"
        );
        assert_eq!(prefix_signature(&p1, 1), None, "k < 2 is not a prefix");
        assert_eq!(prefix_signature(&p1, 3), None, "k == n is the whole branch");
        let neg = CompiledPattern::compile_single(&seq_with_not(8, 0, 2, 1)).unwrap();
        assert_eq!(prefix_signature(&neg, 2), None, "negated branches excluded");
    }

    #[test]
    fn registry_spec_instantiates_identical_registries() {
        let cfg = EngineConfig::default();
        let mut spec = RegistrySpec::new(naive_builder(&cfg), cfg);
        let a = spec.add(&seq_ab(10, 0, 1, true)).unwrap();
        let b = spec.add(&seq_abc(10, 0, 1, 2)).unwrap();
        assert_eq!(spec.queries(), 2);
        assert_eq!(spec.max_window(), 10);
        assert!(spec.branches().count() >= 2);
        let stream = mixed_stream();
        let r1 = spec.instantiate().unwrap().run(&stream);
        let r2 = spec.instantiate().unwrap().run(&stream);
        for id in [a, b] {
            assert_eq!(keyed(&r1.per_query[&id]), keyed(&r2.per_query[&id]));
        }
        // The second instantiation reused every lowered program.
        assert_eq!(r2.metrics.plan_cache_misses, 0);
        assert!(r2.metrics.plan_cache_hits >= 2);
    }

    #[test]
    fn tracer_sees_registrations_and_unregistrations() {
        let ring = Arc::new(cep_obs::RingSink::new(16));
        let cfg = EngineConfig::default();
        let mut reg = QueryRegistry::new(naive_builder(&cfg), cfg);
        reg.set_tracer(Tracer::to_sink(ring.clone()));
        let p = seq_ab(10, 0, 1, true);
        let q1 = reg.register(&p).unwrap();
        let _q2 = reg.register(&p).unwrap();
        reg.unregister(q1);
        let records = ring.snapshot();
        assert_eq!(records.len(), 3);
        match &records[1] {
            TraceRecord::QueryRegistered {
                branches, shared, ..
            } => {
                assert_eq!(*branches, 1);
                assert_eq!(*shared, 1);
            }
            other => panic!("expected QueryRegistered, got {other:?}"),
        }
        match &records[2] {
            TraceRecord::QueryUnregistered {
                retired_fragments,
                fragments,
                ..
            } => {
                assert_eq!(*retired_fragments, 0, "fragment still shared");
                assert_eq!(*fragments, 1);
            }
            other => panic!("expected QueryUnregistered, got {other:?}"),
        }
    }
}
