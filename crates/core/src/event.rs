//! Primitive events.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Identifier of an event type, assigned by [`crate::schema::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Logical occurrence timestamp, in milliseconds.
pub type Timestamp = u64;

/// A primitive event: one data item of the input stream.
///
/// Besides the schema-declared attribute tuple, every event carries:
///
/// * `ts` — the occurrence timestamp (streams are ordered by it),
/// * `seq` — a global serial number reflecting stream position, used by the
///   strict-contiguity selection strategy (Section 6.2 of the paper augments
///   events with exactly this attribute) and to give events a total identity,
/// * `partition` / `part_seq` — the partition id and the per-partition serial
///   number used by the partition-contiguity strategy.
///
/// Engines hold events behind [`Arc`], so partial matches share them.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event type.
    pub type_id: TypeId,
    /// Occurrence timestamp (ms).
    pub ts: Timestamp,
    /// Global serial number in the stream (0-based, strictly increasing).
    pub seq: u64,
    /// Partition identifier (for partition contiguity); 0 if unused.
    pub partition: u32,
    /// Serial number within the partition (0-based, strictly increasing).
    pub part_seq: u64,
    /// Attribute values, positionally matching the type's schema.
    pub attrs: Vec<Value>,
}

impl Event {
    /// Creates an event with unassigned stream coordinates (`seq`,
    /// `partition`, `part_seq` all zero). Use
    /// [`StreamBuilder`](crate::stream::StreamBuilder) to assign them.
    pub fn new(type_id: TypeId, ts: Timestamp, attrs: Vec<Value>) -> Self {
        Event {
            type_id,
            ts,
            seq: 0,
            partition: 0,
            part_seq: 0,
            attrs,
        }
    }

    /// Attribute by index, if present.
    pub fn attr(&self, idx: usize) -> Option<&Value> {
        self.attrs.get(idx)
    }

    /// Rough in-memory footprint of the event, used for the memory metric.
    pub fn estimated_size_bytes(&self) -> usize {
        std::mem::size_of::<Event>() + self.attrs.len() * std::mem::size_of::<Value>()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}@{}#{}(", self.type_id.0, self.ts, self.seq)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// Shared handle to an event, as stored in buffers and partial matches.
pub type EventRef = Arc<Event>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_access() {
        let e = Event::new(TypeId(1), 10, vec![Value::Int(5), Value::Float(1.5)]);
        assert_eq!(e.attr(0), Some(&Value::Int(5)));
        assert_eq!(e.attr(2), None);
    }

    #[test]
    fn display_is_compact() {
        let e = Event::new(TypeId(3), 42, vec![Value::Int(1)]);
        assert_eq!(e.to_string(), "T3@42#0(1)");
    }

    #[test]
    fn size_estimate_scales_with_attrs() {
        let small = Event::new(TypeId(0), 0, vec![]);
        let big = Event::new(TypeId(0), 0, vec![Value::Int(0); 8]);
        assert!(big.estimated_size_bytes() > small.estimated_size_bytes());
    }
}
