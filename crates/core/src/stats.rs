//! Statistics: arrival rates and predicate selectivities (Sections 4.1, 6.3).
//!
//! Plan generation consumes a [`PatternStats`]: per-element arrival rates
//! and a pairwise selectivity matrix for one [`CompiledPattern`]. It is
//! built from type-level [`MeasuredStats`] plus per-predicate selectivities,
//! applying the Section 5 planning transforms:
//!
//! * Kleene elements get the power-set rate `r' = 2^{rW}/W` (Section 5.2);
//! * each temporal precedence constraint contributes selectivity 0.5 (the
//!   SEQ→AND rewrite of Section 5.1, under pairwise independence).

use crate::compile::CompiledPattern;
use crate::error::CepError;
use crate::event::{EventRef, TypeId};
use crate::predicate::Predicate;
use std::collections::HashMap;

/// Options controlling the statistics transforms.
#[derive(Debug, Clone)]
pub struct StatsOptions {
    /// Selectivity assigned to each pairwise temporal-order constraint
    /// introduced by the SEQ→AND rewrite. 0.5 models uniformly random
    /// arrival order.
    pub temporal_selectivity: f64,
    /// Cap on the exponent of the Kleene rate transform `2^{rW}`; keeps the
    /// cost arithmetic inside `f64` range while preserving the "enormous
    /// rate" effect the transform is designed to have.
    pub kleene_exponent_cap: f64,
    /// Refines the Section 5.2 power-set rate for engines that cap Kleene
    /// accumulators at `k` events (see
    /// [`EngineConfig::max_kleene_events`](crate::engine::EngineConfig::max_kleene_events)):
    /// instead of all `2^{rW}` subsets, only the `Σ_{j≤k} C(rW, j)` subsets
    /// of size at most `k` can materialize, so the transformed rate is that
    /// bounded subset count divided by `W`. `None` (the default) keeps the
    /// paper's unbounded `2^{rW}` transform.
    pub max_kleene_events: Option<usize>,
}

impl Default for StatsOptions {
    fn default() -> Self {
        StatsOptions {
            temporal_selectivity: 0.5,
            kleene_exponent_cap: 100.0,
            max_kleene_events: None,
        }
    }
}

/// Number of subsets of size at most `k` of an expected population of `m`
/// events: `Σ_{j=0..k} C(m, j)`, evaluated via the term recurrence
/// `C(m, j+1) = C(m, j)·(m−j)/(j+1)` (valid for fractional `m`), and
/// clamped to `2^exponent_cap`. For integer `m` and `k ≥ m` this is exactly
/// `2^m`, so the bounded transform degrades gracefully to the unbounded one.
fn bounded_subset_count(m: f64, k: usize, exponent_cap: f64) -> f64 {
    let cap = exponent_cap.exp2();
    let mut sum = 1.0; // C(m, 0)
    let mut term = 1.0;
    for j in 0..k {
        let factor = (m - j as f64) / (j as f64 + 1.0);
        if factor <= 0.0 {
            break; // j ≥ m: every subset is already counted
        }
        term *= factor;
        sum += term;
        if sum >= cap {
            return cap;
        }
    }
    sum
}

/// Type-level statistics measured from a stream.
#[derive(Debug, Clone, Default)]
pub struct MeasuredStats {
    /// Observed stream duration in milliseconds.
    pub duration_ms: u64,
    /// Event counts per type.
    pub type_counts: HashMap<TypeId, u64>,
}

impl MeasuredStats {
    /// Measures arrival rates over a ts-ordered stream.
    pub fn measure(stream: &[EventRef]) -> MeasuredStats {
        let mut type_counts: HashMap<TypeId, u64> = HashMap::new();
        for e in stream {
            *type_counts.entry(e.type_id).or_insert(0) += 1;
        }
        let duration_ms = match (stream.first(), stream.last()) {
            (Some(f), Some(l)) => (l.ts - f.ts).max(1),
            _ => 1,
        };
        MeasuredStats {
            duration_ms,
            type_counts,
        }
    }

    /// Arrival rate of a type in events per millisecond.
    ///
    /// A default-constructed (or otherwise empty-window) instance has
    /// `duration_ms == 0`; the duration is clamped to one millisecond so
    /// unknown types report a rate of `0.0` instead of `NaN` (`0/0`) and
    /// counted types stay finite.
    pub fn rate(&self, type_id: TypeId) -> f64 {
        *self.type_counts.get(&type_id).unwrap_or(&0) as f64 / self.duration_ms.max(1) as f64
    }

    /// Overrides the rate of a type (events per millisecond). Useful when
    /// rates are known analytically (e.g., from a generator spec).
    pub fn set_rate(&mut self, type_id: TypeId, rate_per_ms: f64) {
        self.duration_ms = self.duration_ms.max(1_000_000);
        self.type_counts.insert(
            type_id,
            (rate_per_ms * self.duration_ms as f64).round() as u64,
        );
    }
}

/// Estimates the selectivity of each predicate by sampling event pairs.
///
/// For a binary predicate between types `A` and `B`, up to
/// `max_pairs` pairs are drawn from the stream's events of those types by
/// striding; the estimate is the fraction of satisfying pairs. Unary
/// predicates use per-event evaluation. Predicates whose types have no
/// events default to selectivity 1.0 (no information, per the paper's
/// `f_{i,j} = 1` convention).
pub fn estimate_selectivities(
    stream: &[EventRef],
    cp: &CompiledPattern,
    max_pairs: usize,
) -> Vec<f64> {
    estimate_selectivities_iter(stream, cp, max_pairs)
}

/// Iterator-accepting form of [`estimate_selectivities`], for callers whose
/// event window is not contiguous in memory (e.g. a sliding-horizon ring
/// buffer): the events are bucketed by type in one pass without first
/// copying them into a slice.
pub fn estimate_selectivities_iter<'a>(
    events: impl IntoIterator<Item = &'a EventRef>,
    cp: &CompiledPattern,
    max_pairs: usize,
) -> Vec<f64> {
    // Collect a bounded sample of events per referenced position's type.
    let mut by_type: HashMap<TypeId, Vec<&EventRef>> = HashMap::new();
    for e in events {
        if cp.uses_type(e.type_id) {
            by_type.entry(e.type_id).or_default().push(e);
        }
    }
    let pos_type = |pos: usize| -> Option<TypeId> {
        cp.elements
            .iter()
            .find(|e| e.position == pos)
            .map(|e| e.event_type)
            .or_else(|| {
                cp.negated
                    .iter()
                    .find(|n| n.position == pos)
                    .map(|n| n.event_type)
            })
    };
    cp.predicates
        .iter()
        .map(|p| estimate_one(p, &pos_type, &by_type, max_pairs))
        .collect()
}

fn estimate_one(
    p: &Predicate,
    pos_type: &impl Fn(usize) -> Option<TypeId>,
    by_type: &HashMap<TypeId, Vec<&EventRef>>,
    max_pairs: usize,
) -> f64 {
    let (a, b) = p.position_pair();
    if a == usize::MAX {
        return 1.0;
    }
    let Some(ta) = pos_type(a) else { return 1.0 };
    let empty = Vec::new();
    let eva = by_type.get(&ta).unwrap_or(&empty);
    if eva.is_empty() {
        return 1.0;
    }
    match b {
        None => {
            let step = (eva.len() / max_pairs.max(1)).max(1);
            let sample: Vec<_> = eva.iter().step_by(step).collect();
            let hits = sample.iter().filter(|e| p.eval_single(a, e)).count();
            hits as f64 / sample.len() as f64
        }
        Some(b) => {
            let Some(tb) = pos_type(b) else { return 1.0 };
            let evb = by_type.get(&tb).unwrap_or(&empty);
            if evb.is_empty() {
                return 1.0;
            }
            // Stride both sides so the pair count stays near max_pairs.
            let budget = (max_pairs as f64).sqrt().ceil() as usize;
            let sa = (eva.len() / budget.max(1)).max(1);
            let sb = (evb.len() / budget.max(1)).max(1);
            let mut total = 0usize;
            let mut hits = 0usize;
            for ea in eva.iter().step_by(sa) {
                for eb in evb.iter().step_by(sb) {
                    if ea.seq == eb.seq {
                        continue; // same event cannot bind two positions
                    }
                    total += 1;
                    if p.eval_pair(a, ea, b, eb) {
                        hits += 1;
                    }
                }
            }
            if total == 0 {
                1.0
            } else {
                hits as f64 / total as f64
            }
        }
    }
}

/// Per-pattern statistics consumed by cost models and plan generators.
#[derive(Debug, Clone)]
pub struct PatternStats {
    /// Window length in milliseconds.
    pub window_ms: f64,
    /// Arrival rate per positive element (events per millisecond), with the
    /// Kleene transform already applied.
    pub rates: Vec<f64>,
    /// Symmetric selectivity matrix; `sel[i][i]` is the product of filter
    /// selectivities of element `i`.
    pub sel: Vec<Vec<f64>>,
    /// Whether a *real* (non-temporal) predicate links elements `i` and `j`;
    /// used for query-graph topology detection (Section 4.3).
    pub explicit_pair: Vec<Vec<bool>>,
}

impl PatternStats {
    /// Builds statistics for a compiled pattern.
    ///
    /// `pred_sel[i]` is the selectivity of `cp.predicates[i]`; rates come
    /// from `measured`.
    pub fn build(
        cp: &CompiledPattern,
        measured: &MeasuredStats,
        pred_sel: &[f64],
        opts: &StatsOptions,
    ) -> Result<PatternStats, CepError> {
        let n = cp.n();
        let mut stats = PatternStats {
            window_ms: cp.window as f64,
            rates: vec![0.0; n],
            sel: vec![vec![1.0; n]; n],
            explicit_pair: vec![vec![false; n]; n],
        };
        stats.update(cp, measured, pred_sel, opts)?;
        Ok(stats)
    }

    /// Rebuilds these statistics **in place** from fresh measurements: the
    /// incremental path of the adaptive loop, which re-derives rates and
    /// selectivities every drift check without reallocating the matrices.
    /// `self` must have been built for a pattern of the same arity.
    pub fn update(
        &mut self,
        cp: &CompiledPattern,
        measured: &MeasuredStats,
        pred_sel: &[f64],
        opts: &StatsOptions,
    ) -> Result<(), CepError> {
        if pred_sel.len() != cp.predicates.len() {
            return Err(CepError::Stats(format!(
                "{} selectivities supplied for {} predicates",
                pred_sel.len(),
                cp.predicates.len()
            )));
        }
        let n = cp.n();
        if self.rates.len() != n {
            return Err(CepError::Stats(format!(
                "statistics were built for {} elements, pattern has {n}",
                self.rates.len()
            )));
        }
        let w = cp.window as f64;
        self.window_ms = w;
        for (slot, e) in self.rates.iter_mut().zip(&cp.elements) {
            let r = measured.rate(e.event_type);
            *slot = if e.kleene {
                match opts.max_kleene_events {
                    // Section 5.2: the power-set type T' has rate 2^{rW}/W.
                    None => {
                        let exponent = (r * w).min(opts.kleene_exponent_cap);
                        exponent.exp2() / w
                    }
                    // Engine-capped accumulators: only subsets of size ≤ k
                    // materialize.
                    Some(k) => bounded_subset_count(r * w, k, opts.kleene_exponent_cap) / w,
                }
            } else {
                r
            };
        }
        for i in 0..n {
            self.sel[i][i] = 1.0;
            for &pi in cp.filters_of(i) {
                self.sel[i][i] *= pred_sel[pi];
            }
            for j in (i + 1)..n {
                let mut s = 1.0;
                let mut explicit = false;
                for &pi in cp.predicates_between(i, j) {
                    s *= pred_sel[pi];
                    explicit = true;
                }
                if cp.must_precede(i, j) || cp.must_precede(j, i) {
                    s *= opts.temporal_selectivity;
                }
                self.sel[i][j] = s;
                self.sel[j][i] = s;
                self.explicit_pair[i][j] = explicit;
                self.explicit_pair[j][i] = explicit;
            }
        }
        Ok(())
    }

    /// Synthetic statistics, mostly for tests and planning-only experiments:
    /// `rates[i]` in events/ms and an explicit selectivity matrix.
    pub fn synthetic(window_ms: f64, rates: Vec<f64>, sel: Vec<Vec<f64>>) -> PatternStats {
        let n = rates.len();
        assert_eq!(sel.len(), n, "selectivity matrix must be n x n");
        let explicit_pair = (0..n)
            .map(|i| (0..n).map(|j| i != j && sel[i][j] < 1.0).collect())
            .collect();
        PatternStats {
            window_ms,
            rates,
            sel,
            explicit_pair,
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.rates.len()
    }

    /// Expected number of events of element `i` inside a window (`W·r_i`).
    pub fn count_in_window(&self, i: usize) -> f64 {
        self.window_ms * self.rates[i]
    }

    /// Expected number of coexisting partial matches over an element set
    /// under skip-till-any-match (Section 4.1):
    /// `Π_i (W·r_i·sel_ii) · Π_{i<j} sel_ij`.
    pub fn pm_of_set(&self, set: &[usize]) -> f64 {
        let mut pm = 1.0;
        for (a, &i) in set.iter().enumerate() {
            pm *= self.count_in_window(i) * self.sel[i][i];
            for &j in &set[..a] {
                pm *= self.sel[i][j];
            }
        }
        pm
    }

    /// Expected number of coexisting partial matches over an element set
    /// under skip-till-next-match (Section 6.2):
    /// `W·min_i r_i · Π_{i<=j} sel_ij`.
    pub fn pm_next_of_set(&self, set: &[usize]) -> f64 {
        let min_rate = set
            .iter()
            .map(|&i| self.rates[i])
            .fold(f64::INFINITY, f64::min);
        if !min_rate.is_finite() {
            return 0.0;
        }
        let mut pm = self.window_ms * min_rate;
        for (a, &i) in set.iter().enumerate() {
            pm *= self.sel[i][i];
            for &j in &set[..a] {
                pm *= self.sel[i][j];
            }
        }
        pm
    }

    /// Product of selectivities between two disjoint element sets
    /// (`SEL_LR` of Section 4.2).
    pub fn cross_sel(&self, left: &[usize], right: &[usize]) -> f64 {
        let mut s = 1.0;
        for &i in left {
            for &j in right {
                s *= self.sel[i][j];
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::pattern::PatternBuilder;
    use crate::predicate::CmpOp;
    use crate::value::Value;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn stream_ab() -> Vec<EventRef> {
        // Type 0 at every ms (x = ts), type 1 every 2 ms (x = ts/2).
        let mut b = crate::stream::StreamBuilder::new();
        for ts in 0..1000u64 {
            b.push(Event::new(t(0), ts, vec![Value::Int(ts as i64)]));
            if ts % 2 == 0 {
                b.push(Event::new(t(1), ts, vec![Value::Int((ts / 2) as i64)]));
            }
        }
        b.build()
    }

    #[test]
    fn measured_rates() {
        let s = stream_ab();
        let m = MeasuredStats::measure(&s);
        assert!((m.rate(t(0)) - 1.0).abs() < 0.01);
        assert!((m.rate(t(1)) - 0.5).abs() < 0.01);
        assert_eq!(m.rate(t(9)), 0.0);
    }

    #[test]
    fn selectivity_estimation_half() {
        // P(a.x < b.x) with a.x ~ U(0,1000), b.x ~ U(0,500) is ~0.25.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let s = stream_ab();
        let sel = estimate_selectivities(&s, &cp, 10_000);
        assert_eq!(sel.len(), 1);
        assert!((sel[0] - 0.25).abs() < 0.05, "estimated {}", sel[0]);
    }

    #[test]
    fn pattern_stats_sequence_applies_temporal_selectivity() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let mut m = MeasuredStats::default();
        m.set_rate(t(0), 1.0);
        m.set_rate(t(1), 2.0);
        let st = PatternStats::build(&cp, &m, &[], &StatsOptions::default()).unwrap();
        assert!((st.sel[0][1] - 0.5).abs() < 1e-12);
        assert!((st.count_in_window(0) - 10.0).abs() < 1e-9);
        assert!((st.count_in_window(1) - 20.0).abs() < 1e-9);
        // PM over both: 10 * 20 * 0.5 = 100.
        assert!((st.pm_of_set(&[0, 1]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn kleene_rate_transform() {
        // Paper example (Section 5.2): rate 5 events/s = 0.5/ms over a
        // 10-second window gives r' = 2^{rW}/W per ms.
        let mut b = PatternBuilder::new(10_000);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.and_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut m = MeasuredStats::default();
        m.set_rate(t(0), 0.005);
        m.set_rate(t(1), 0.005);
        let opts = StatsOptions {
            kleene_exponent_cap: 60.0,
            ..Default::default()
        };
        let st = PatternStats::build(&cp, &m, &[], &opts).unwrap();
        // rW = 50 -> 2^50 / 10000 per ms.
        let expect = 50f64.exp2() / 10_000.0;
        assert!((st.rates[1] - expect).abs() / expect < 1e-9);
        // The cap kicks in for huge exponents.
        let opts_capped = StatsOptions {
            kleene_exponent_cap: 10.0,
            ..Default::default()
        };
        let st2 = PatternStats::build(&cp, &m, &[], &opts_capped).unwrap();
        assert!(st2.rates[1] < st.rates[1]);
    }

    #[test]
    fn bounded_kleene_transform_refines_the_power_set_rate() {
        let mut b = PatternBuilder::new(10_000);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.and_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let mut m = MeasuredStats::default();
        m.set_rate(t(0), 0.005);
        m.set_rate(t(1), 0.002); // rW = 20 expected Kleene events
        let unbounded = PatternStats::build(&cp, &m, &[], &StatsOptions::default()).unwrap();
        // The bounded rate grows monotonically in the cap and stays below
        // the unbounded power-set rate while k < rW.
        let mut prev = 0.0;
        for k_cap in [1usize, 2, 4, 8, 16] {
            let opts = StatsOptions {
                max_kleene_events: Some(k_cap),
                ..Default::default()
            };
            let st = PatternStats::build(&cp, &m, &[], &opts).unwrap();
            assert!(st.rates[1] > prev, "not monotone at k={k_cap}");
            assert!(
                st.rates[1] < unbounded.rates[1],
                "k={k_cap} not a refinement"
            );
            prev = st.rates[1];
        }
        // With k >= rW the bounded count is exactly the full power set.
        let opts = StatsOptions {
            max_kleene_events: Some(20),
            ..Default::default()
        };
        let st = PatternStats::build(&cp, &m, &[], &opts).unwrap();
        let expect = 20f64.exp2() / 10_000.0;
        assert!((st.rates[1] - expect).abs() / expect < 1e-9);
        // Non-Kleene rates are untouched by the option.
        assert_eq!(st.rates[0], unbounded.rates[0]);
    }

    #[test]
    fn bounded_subset_count_respects_the_exponent_cap() {
        // 2^300 overflows nothing: the cap clamps the count.
        let capped = bounded_subset_count(300.0, 300, 100.0);
        assert_eq!(capped, 100f64.exp2());
        assert!(capped.is_finite());
        // Zero expected events: only the empty subset.
        assert_eq!(bounded_subset_count(0.0, 8, 100.0), 1.0);
    }

    #[test]
    fn pm_next_uses_min_rate() {
        let st =
            PatternStats::synthetic(10.0, vec![1.0, 3.0], vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
        // min rate 1.0 => 10 * 1.0 * 0.5.
        assert!((st.pm_next_of_set(&[0, 1]) - 5.0).abs() < 1e-12);
        assert!(st.pm_next_of_set(&[0, 1]) <= st.pm_of_set(&[0, 1]));
    }

    #[test]
    fn cross_sel_multiplies_pairs() {
        let st = PatternStats::synthetic(
            1.0,
            vec![1.0, 1.0, 1.0],
            vec![
                vec![1.0, 0.5, 0.2],
                vec![0.5, 1.0, 1.0],
                vec![0.2, 1.0, 1.0],
            ],
        );
        assert!((st.cross_sel(&[0], &[1, 2]) - 0.1).abs() < 1e-12);
        assert!((st.cross_sel(&[1], &[2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_selectivity_count_rejected() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let m = MeasuredStats::default();
        assert!(PatternStats::build(&cp, &m, &[], &StatsOptions::default()).is_err());
    }

    #[test]
    fn empty_window_rates_default_to_zero_not_nan() {
        // A default-constructed MeasuredStats has duration 0: every rate —
        // known or unknown type — must come back 0.0, never NaN or inf.
        let m = MeasuredStats::default();
        assert_eq!(m.rate(t(0)), 0.0);
        assert_eq!(m.rate(t(999)), 0.0);
        // Same for a measurement over an empty stream.
        let empty = MeasuredStats::measure(&[]);
        assert_eq!(empty.rate(t(0)), 0.0);
        assert!(empty.rate(t(0)).is_finite());
        // A nonzero count with a zero duration (hand-assembled) stays
        // finite too.
        let mut degenerate = MeasuredStats::default();
        degenerate.type_counts.insert(t(1), 5);
        assert!(degenerate.rate(t(1)).is_finite());
        assert_eq!(degenerate.rate(t(1)), 5.0);
    }

    #[test]
    fn selectivity_estimation_defaults_on_empty_and_unknown_inputs() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        b.predicate(Predicate::attr_const(a.pos(), 0, CmpOp::Ge, Value::Int(0)));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        // Empty stream: no information, every predicate defaults to 1.0.
        let sels = estimate_selectivities(&[], &cp, 100);
        assert_eq!(sels, vec![1.0, 1.0]);
        // Stream with only one of the two referenced types: the pairwise
        // predicate still defaults to 1.0, the unary one is measurable.
        let mut sb = crate::stream::StreamBuilder::new();
        for ts in 0..10u64 {
            sb.push(Event::new(t(0), ts, vec![Value::Int(ts as i64)]));
        }
        let partial = sb.build();
        let sels = estimate_selectivities(&partial, &cp, 100);
        assert_eq!(sels[0], 1.0, "pair with an absent type defaults to 1.0");
        assert_eq!(sels[1], 1.0, "x >= 0 holds for every sampled event");
        // A zero pair budget must not divide by zero: estimates stay
        // finite probabilities.
        let full = stream_ab();
        for s in estimate_selectivities(&full, &cp, 0) {
            assert!(s.is_finite());
            assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        }
    }

    #[test]
    fn update_rebuilds_in_place_and_matches_build() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c, d]).unwrap()).unwrap();
        let opts = StatsOptions::default();
        let mut m1 = MeasuredStats::default();
        for i in 0..3 {
            m1.set_rate(t(i), 1.0 + i as f64);
        }
        let mut st = PatternStats::build(&cp, &m1, &[0.3], &opts).unwrap();
        // Fresh measurements and selectivities: the in-place update must
        // produce exactly what a fresh build produces.
        let mut m2 = MeasuredStats::default();
        for i in 0..3 {
            m2.set_rate(t(i), 5.0 - i as f64);
        }
        st.update(&cp, &m2, &[0.9], &opts).unwrap();
        let fresh = PatternStats::build(&cp, &m2, &[0.9], &opts).unwrap();
        assert_eq!(st.rates, fresh.rates);
        assert_eq!(st.sel, fresh.sel);
        assert_eq!(st.explicit_pair, fresh.explicit_pair);
        assert_eq!(st.window_ms, fresh.window_ms);
        // Updating back recovers the original values (no residue from the
        // in-place multiply-accumulate).
        st.update(&cp, &m1, &[0.3], &opts).unwrap();
        let original = PatternStats::build(&cp, &m1, &[0.3], &opts).unwrap();
        assert_eq!(st.sel, original.sel);
        assert_eq!(st.rates, original.rates);
        // Arity and selectivity-count mismatches are rejected.
        assert!(st.update(&cp, &m1, &[], &opts).is_err());
        let mut wrong = PatternStats::synthetic(1.0, vec![1.0], vec![vec![1.0]]);
        assert!(wrong.update(&cp, &m1, &[0.3], &opts).is_err());
    }

    #[test]
    fn explicit_pair_tracks_real_predicates_only() {
        let mut b = PatternBuilder::new(10);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c, d]).unwrap()).unwrap();
        let mut m = MeasuredStats::default();
        for i in 0..3 {
            m.set_rate(t(i), 1.0);
        }
        let st = PatternStats::build(&cp, &m, &[0.3], &StatsOptions::default()).unwrap();
        assert!(st.explicit_pair[0][1]);
        assert!(!st.explicit_pair[1][2]); // only temporal
        assert!((st.sel[1][2] - 0.5).abs() < 1e-12);
        assert!((st.sel[0][1] - 0.15).abs() < 1e-12);
    }
}
