//! Compilation of patterns into the engine- and planner-facing form.
//!
//! Implements the Section 5 reductions: nested patterns are decomposed into
//! DNF (Section 5.4), sequence operators become conjunctions plus temporal
//! order constraints (Section 5.1), and negated events are extracted with
//! their temporal bounds (Section 5.3). Kleene closure elements are kept as
//! flagged elements; their power-set *rate* transform (Section 5.2) is
//! applied when building [`crate::stats::PatternStats`], not here, because —
//! as the paper notes — the rewriting is "only applied for the purpose of
//! plan generation".
//!
//! A [`CompiledPattern`] is one conjunctive branch: a set of positive
//! [`Element`]s (possibly Kleene), a set of [`NegatedElement`]s with bound
//! references, a temporal-precedence closure, and the applicable predicates.
//! Nested patterns compile to several `CompiledPattern`s whose detected
//! matches are unioned.

use crate::error::CepError;
use crate::event::TypeId;
use crate::pattern::{Pattern, PatternExpr};
use crate::predicate::Predicate;
use crate::selection::SelectionStrategy;
use std::collections::HashMap;

/// The n-ary operator of a compiled (simple) pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaryOp {
    /// Total temporal order over the positive elements.
    Seq,
    /// No (or partial) temporal order.
    And,
}

/// A positive primitive element of a compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Original pattern position (stable across DNF branches).
    pub position: usize,
    /// Accepted event type.
    pub event_type: TypeId,
    /// Variable name from the specification.
    pub name: String,
    /// Whether this element is under Kleene closure: it binds a non-empty
    /// *set* of events rather than a single event.
    pub kleene: bool,
}

/// A negated primitive element with its temporal bounds.
///
/// The forbidden interval for a candidate event `b` given a positive match
/// `M` is `(L, U)` (open) where:
///
/// * `L = max ts of the elements in `before`` (or `min_ts(M)` if `before`
///   is empty and `after` is empty — the AND "span" semantics; or
///   `min ts(after) − W` for a leading NOT in a sequence);
/// * `U = min ts of the elements in `after`` (or `max_ts(M)` for the AND
///   span semantics; or `min_ts(M) + W` for a trailing NOT, in which case
///   emission is deferred until the watermark passes `U`).
#[derive(Debug, Clone, PartialEq)]
pub struct NegatedElement {
    /// Original pattern position.
    pub position: usize,
    /// Event type whose absence is asserted.
    pub event_type: TypeId,
    /// Variable name from the specification.
    pub name: String,
    /// Indices (into [`CompiledPattern::elements`]) of positive elements
    /// that temporally precede the forbidden interval.
    pub before: Vec<usize>,
    /// Indices of positive elements that temporally succeed the interval.
    pub after: Vec<usize>,
}

/// One conjunctive branch of a pattern, ready for planning and evaluation.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    /// `Seq` if the precedence relation totally orders the positive
    /// elements, otherwise `And`.
    pub op: NaryOp,
    /// Positive elements in specification order. For `Seq` patterns this is
    /// also the temporal order.
    pub elements: Vec<Element>,
    /// Negated elements.
    pub negated: Vec<NegatedElement>,
    /// All predicates applicable to this branch (positions refer to the
    /// original pattern).
    pub predicates: Vec<Predicate>,
    /// Time window in milliseconds.
    pub window: u64,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// `precedes[i][j]` — element `i` must occur strictly before element `j`
    /// (transitive closure).
    pub precedes: Vec<Vec<bool>>,
    /// Predicate indices between each pair of positive elements:
    /// `pred_pairs[i][j]` for `i != j` (symmetric).
    pred_pairs: Vec<Vec<Vec<usize>>>,
    /// Unary predicate indices per positive element.
    filters: Vec<Vec<usize>>,
    /// Predicate indices involving each negated element (unary filters and
    /// pairs with positive elements).
    neg_preds: Vec<Vec<usize>>,
    /// position -> positive element index.
    pos_to_elem: HashMap<usize, usize>,
}

impl CompiledPattern {
    /// Compiles a pattern into its DNF branches.
    ///
    /// Simple patterns yield exactly one branch; nested patterns yield one
    /// branch per DNF conjunct (Section 5.4). The union of the branches'
    /// matches equals the pattern's matches.
    pub fn compile(pattern: &Pattern) -> Result<Vec<CompiledPattern>, CepError> {
        pattern.validate()?;
        let conjuncts = dnf(&pattern.expr);
        conjuncts
            .into_iter()
            .map(|c| CompiledPattern::from_conjunct(c, pattern))
            .collect()
    }

    /// Compiles a pattern that must have a single branch (no `OR`).
    ///
    /// # Errors
    /// Returns [`CepError::Pattern`] if DNF decomposition yields more than
    /// one branch; use [`CompiledPattern::compile`] plus a multi-engine for
    /// those.
    pub fn compile_single(pattern: &Pattern) -> Result<CompiledPattern, CepError> {
        let mut branches = Self::compile(pattern)?;
        if branches.len() != 1 {
            return Err(CepError::Pattern(format!(
                "pattern has {} DNF branches; evaluate each branch separately",
                branches.len()
            )));
        }
        Ok(branches.pop().expect("length checked"))
    }

    fn from_conjunct(c: Conjunct, pattern: &Pattern) -> Result<CompiledPattern, CepError> {
        let mut elements = Vec::new();
        let mut negated_raw = Vec::new();
        for a in &c.atoms {
            if a.negated {
                if a.kleene {
                    return Err(CepError::Pattern(format!(
                        "position {} is both negated and Kleene-closed",
                        a.position
                    )));
                }
                negated_raw.push(a.clone());
            } else {
                elements.push(Element {
                    position: a.position,
                    event_type: a.event_type,
                    name: a.name.clone(),
                    kleene: a.kleene,
                });
            }
        }
        if elements.is_empty() {
            return Err(CepError::Pattern(
                "a pattern branch must contain at least one positive event".into(),
            ));
        }
        let n = elements.len();
        let pos_to_elem: HashMap<usize, usize> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| (e.position, i))
            .collect();

        // Precedence closure over positive elements.
        let mut precedes = vec![vec![false; n]; n];
        for &(pa, pb) in &c.order_pairs {
            if let (Some(&i), Some(&j)) = (pos_to_elem.get(&pa), pos_to_elem.get(&pb)) {
                precedes[i][j] = true;
            }
        }
        #[allow(clippy::needless_range_loop)] // Warshall closure: index form is clearest
        for k in 0..n {
            for i in 0..n {
                if precedes[i][k] {
                    for j in 0..n {
                        if precedes[k][j] {
                            precedes[i][j] = true;
                        }
                    }
                }
            }
        }
        for (i, row) in precedes.iter().enumerate() {
            if row[i] {
                return Err(CepError::Pattern(
                    "cyclic temporal ordering constraints".into(),
                ));
            }
        }
        let total_order =
            (0..n).all(|i| (0..n).all(|j| i == j || precedes[i][j] || precedes[j][i]));
        let op = if total_order && n > 0 {
            NaryOp::Seq
        } else {
            NaryOp::And
        };

        // Keep elements sorted so that for Seq patterns index order equals
        // temporal order (stable for And patterns).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            if precedes[a][b] {
                std::cmp::Ordering::Less
            } else if precedes[b][a] {
                std::cmp::Ordering::Greater
            } else {
                a.cmp(&b)
            }
        });
        let elements: Vec<Element> = order.iter().map(|&i| elements[i].clone()).collect();
        let remap: HashMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut precedes2 = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if precedes[i][j] {
                    precedes2[remap[&i]][remap[&j]] = true;
                }
            }
        }
        let precedes = precedes2;
        let pos_to_elem: HashMap<usize, usize> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| (e.position, i))
            .collect();

        // Negated elements with bounds mapped to element indices.
        let branch_positions: std::collections::HashSet<usize> =
            c.atoms.iter().map(|a| a.position).collect();
        let negated: Vec<NegatedElement> = negated_raw
            .iter()
            .map(|a| NegatedElement {
                position: a.position,
                event_type: a.event_type,
                name: a.name.clone(),
                before: a
                    .before
                    .iter()
                    .filter_map(|p| pos_to_elem.get(p).copied())
                    .collect(),
                after: a
                    .after
                    .iter()
                    .filter_map(|p| pos_to_elem.get(p).copied())
                    .collect(),
            })
            .collect();

        // Predicates restricted to this branch's positions.
        let predicates: Vec<Predicate> = pattern
            .predicates
            .iter()
            .filter(|p| {
                let (a, b) = p.position_pair();
                (a == usize::MAX || branch_positions.contains(&a))
                    && b.is_none_or(|b| branch_positions.contains(&b))
            })
            .cloned()
            .collect();

        // Index predicates by element pairs / filters / negated involvement.
        let neg_pos_to_idx: HashMap<usize, usize> = negated
            .iter()
            .enumerate()
            .map(|(i, ne)| (ne.position, i))
            .collect();
        let mut pred_pairs = vec![vec![Vec::new(); n]; n];
        let mut filters = vec![Vec::new(); n];
        let mut neg_preds = vec![Vec::new(); negated.len()];
        for (pi, p) in predicates.iter().enumerate() {
            let (a, b) = p.position_pair();
            if a == usize::MAX {
                continue; // constant-only predicate: ignored
            }
            match b {
                None => {
                    if let Some(&e) = pos_to_elem.get(&a) {
                        filters[e].push(pi);
                    } else if let Some(&k) = neg_pos_to_idx.get(&a) {
                        neg_preds[k].push(pi);
                    }
                }
                Some(b) => {
                    match (pos_to_elem.get(&a), pos_to_elem.get(&b)) {
                        (Some(&ea), Some(&eb)) => {
                            pred_pairs[ea][eb].push(pi);
                            pred_pairs[eb][ea].push(pi);
                        }
                        _ => {
                            // At least one side is a negated position.
                            if let Some(&k) = neg_pos_to_idx.get(&a) {
                                neg_preds[k].push(pi);
                            }
                            if let Some(&k) = neg_pos_to_idx.get(&b) {
                                neg_preds[k].push(pi);
                            }
                        }
                    }
                }
            }
        }

        Ok(CompiledPattern {
            op,
            elements,
            negated,
            predicates,
            window: pattern.window,
            strategy: pattern.strategy,
            precedes,
            pred_pairs,
            filters,
            neg_preds,
            pos_to_elem,
        })
    }

    /// Number of positive elements.
    pub fn n(&self) -> usize {
        self.elements.len()
    }

    /// Positive element index for a pattern position.
    pub fn elem_index(&self, position: usize) -> Option<usize> {
        self.pos_to_elem.get(&position).copied()
    }

    /// Indices of predicates between two distinct positive elements.
    pub fn predicates_between(&self, i: usize, j: usize) -> &[usize] {
        &self.pred_pairs[i][j]
    }

    /// Indices of unary predicates (filters) on a positive element.
    pub fn filters_of(&self, i: usize) -> &[usize] {
        &self.filters[i]
    }

    /// Indices of predicates involving negated element `k`.
    pub fn negated_predicates(&self, k: usize) -> &[usize] {
        &self.neg_preds[k]
    }

    /// Whether element `i` must occur strictly before element `j`.
    pub fn must_precede(&self, i: usize, j: usize) -> bool {
        self.precedes[i][j]
    }

    /// Indices of positive elements accepting `type_id` (types may repeat).
    pub fn elements_of_type(&self, type_id: TypeId) -> impl Iterator<Item = usize> + '_ {
        self.elements
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.event_type == type_id)
            .map(|(i, _)| i)
    }

    /// Indices of negated elements with `type_id`.
    pub fn negated_of_type(&self, type_id: TypeId) -> impl Iterator<Item = usize> + '_ {
        self.negated
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.event_type == type_id)
            .map(|(i, _)| i)
    }

    /// Whether any element (positive or negated) accepts `type_id`.
    pub fn uses_type(&self, type_id: TypeId) -> bool {
        self.elements.iter().any(|e| e.event_type == type_id)
            || self.negated.iter().any(|e| e.event_type == type_id)
    }

    /// Whether the pattern has Kleene elements.
    pub fn has_kleene(&self) -> bool {
        self.elements.iter().any(|e| e.kleene)
    }

    /// The positive element that is temporally last, if one is statically
    /// known (i.e., the pattern is a sequence). Used by the latency cost
    /// model (Section 6.1).
    pub fn last_element(&self) -> Option<usize> {
        let n = self.n();
        (0..n).find(|&i| (0..n).all(|j| j == i || self.precedes[j][i]))
    }

    /// Canonical signature of this branch: a stable (cross-run,
    /// cross-platform) hash over the pattern structure — operator, element
    /// positions/types/Kleene flags, negated elements with their bounds,
    /// the full predicate set, window, selection strategy, and the
    /// precedence closure. Two branches with equal signatures compile to
    /// interchangeable evaluator programs, which is what keys the
    /// [`PlanCache`](crate::compiled::PlanCache).
    pub fn signature(&self) -> u64 {
        use crate::compiled::{cmp_op_tag, write_operand, SigHasher};
        let mut h = SigHasher::new();
        h.write_u8(match self.op {
            NaryOp::Seq => 0,
            NaryOp::And => 1,
        });
        h.write_u64(self.elements.len() as u64);
        for e in &self.elements {
            h.write_u64(e.position as u64);
            h.write_u64(e.event_type.0 as u64);
            h.write_u8(e.kleene as u8);
        }
        h.write_u64(self.negated.len() as u64);
        for ne in &self.negated {
            h.write_u64(ne.position as u64);
            h.write_u64(ne.event_type.0 as u64);
            h.write_u64(ne.before.len() as u64);
            for &b in &ne.before {
                h.write_u64(b as u64);
            }
            h.write_u64(ne.after.len() as u64);
            for &a in &ne.after {
                h.write_u64(a as u64);
            }
        }
        h.write_u64(self.predicates.len() as u64);
        for p in &self.predicates {
            write_operand(&mut h, &p.left);
            h.write_u8(cmp_op_tag(p.op));
            write_operand(&mut h, &p.right);
        }
        h.write_u64(self.window);
        h.write_u8(match self.strategy {
            crate::selection::SelectionStrategy::SkipTillAnyMatch => 0,
            crate::selection::SelectionStrategy::SkipTillNextMatch => 1,
            crate::selection::SelectionStrategy::StrictContiguity => 2,
            crate::selection::SelectionStrategy::PartitionContiguity => 3,
        });
        for row in &self.precedes {
            for &b in row {
                h.write_u8(b as u8);
            }
        }
        h.finish()
    }
}

/// A DNF atom.
#[derive(Debug, Clone)]
struct Atom {
    position: usize,
    event_type: TypeId,
    name: String,
    negated: bool,
    kleene: bool,
    before: Vec<usize>,
    after: Vec<usize>,
}

/// A DNF conjunct: atoms plus temporal order pairs between *positions*.
#[derive(Debug, Clone, Default)]
struct Conjunct {
    atoms: Vec<Atom>,
    order_pairs: Vec<(usize, usize)>,
}

impl Conjunct {
    fn positive_positions(&self) -> Vec<usize> {
        self.atoms
            .iter()
            .filter(|a| !a.negated)
            .map(|a| a.position)
            .collect()
    }
}

/// Decomposes an expression into DNF conjuncts (Section 5.4).
fn dnf(expr: &PatternExpr) -> Vec<Conjunct> {
    match expr {
        PatternExpr::Event {
            position,
            event_type,
            name,
        } => vec![Conjunct {
            atoms: vec![Atom {
                position: *position,
                event_type: *event_type,
                name: name.clone(),
                negated: false,
                kleene: false,
                before: Vec::new(),
                after: Vec::new(),
            }],
            order_pairs: Vec::new(),
        }],
        PatternExpr::Not(inner) => {
            let mut cs = dnf(inner);
            for c in &mut cs {
                for a in &mut c.atoms {
                    a.negated = true;
                }
            }
            cs
        }
        PatternExpr::Kleene(inner) => {
            let mut cs = dnf(inner);
            for c in &mut cs {
                for a in &mut c.atoms {
                    a.kleene = true;
                }
            }
            cs
        }
        PatternExpr::Or(children) => children.iter().flat_map(dnf).collect(),
        PatternExpr::And(children) => cross_product(children, false),
        PatternExpr::Seq(children) => cross_product(children, true),
    }
}

/// Cross product of children conjunct lists. For `ordered` (SEQ) parents,
/// adds precedence pairs between positives of earlier and later children and
/// extends negated atoms' bounds with surrounding positives.
fn cross_product(children: &[PatternExpr], ordered: bool) -> Vec<Conjunct> {
    let lists: Vec<Vec<Conjunct>> = children.iter().map(dnf).collect();
    let mut acc: Vec<Conjunct> = vec![Conjunct::default()];
    for list in lists {
        let mut next = Vec::with_capacity(acc.len() * list.len());
        for base in &acc {
            for item in &list {
                let mut c = base.clone();
                let prev_positives = c.positive_positions();
                let item_positives = item.positive_positions();
                if ordered {
                    for &p in &prev_positives {
                        for &q in &item_positives {
                            c.order_pairs.push((p, q));
                        }
                    }
                }
                // Extend bounds: new negated atoms are preceded by all
                // existing positives; existing negated atoms are succeeded
                // by the new positives.
                let mut item_atoms = item.atoms.clone();
                if ordered {
                    for a in &mut item_atoms {
                        if a.negated {
                            a.before.extend(prev_positives.iter().copied());
                        }
                    }
                    for a in &mut c.atoms {
                        if a.negated {
                            a.after.extend(item_positives.iter().copied());
                        }
                    }
                }
                c.atoms.extend(item_atoms);
                c.order_pairs.extend(item.order_pairs.iter().copied());
                next.push(c);
            }
        }
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    fn seq3() -> Pattern {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "b");
        let d = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, d.pos(), 0));
        b.seq([a, c, d]).unwrap()
    }

    #[test]
    fn pure_sequence_compiles_to_single_branch() {
        let cps = CompiledPattern::compile(&seq3()).unwrap();
        assert_eq!(cps.len(), 1);
        let cp = &cps[0];
        assert_eq!(cp.op, NaryOp::Seq);
        assert_eq!(cp.n(), 3);
        assert!(cp.must_precede(0, 1));
        assert!(cp.must_precede(0, 2)); // transitive closure
        assert!(!cp.must_precede(2, 0));
        assert_eq!(cp.predicates_between(0, 2).len(), 1);
        assert_eq!(cp.predicates_between(0, 1).len(), 0);
        assert_eq!(cp.last_element(), Some(2));
    }

    #[test]
    fn conjunction_has_no_order() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "b");
        let p = b.and([a, c]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert_eq!(cp.op, NaryOp::And);
        assert!(!cp.must_precede(0, 1));
        assert!(!cp.must_precede(1, 0));
        assert_eq!(cp.last_element(), None);
    }

    #[test]
    fn negation_bounds_in_sequence() {
        // SEQ(A, NOT(B), C): B bounded by A (before) and C (after).
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let c = b.event(t(2), "c");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert_eq!(cp.n(), 2);
        assert_eq!(cp.negated.len(), 1);
        let ne = &cp.negated[0];
        assert_eq!(ne.before, vec![cp.elem_index(a.pos()).unwrap()]);
        assert_eq!(ne.after, vec![cp.elem_index(c.pos()).unwrap()]);
    }

    #[test]
    fn trailing_negation_has_open_upper_bound() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let p = b.seq_exprs([ae, ne]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let ne = &cp.negated[0];
        assert_eq!(ne.before.len(), 1);
        assert!(ne.after.is_empty());
    }

    #[test]
    fn negation_in_conjunction_has_no_bounds() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let nb = b.event(t(1), "nb");
        let c = b.event(t(2), "c");
        let ae = b.expr(a);
        let ne = b.not(nb);
        let ce = b.expr(c);
        let p = b.and_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let ne = &cp.negated[0];
        assert!(ne.before.is_empty());
        assert!(ne.after.is_empty());
    }

    #[test]
    fn disjunction_of_conjunctions_dnf() {
        // AND(A, B, OR(C, D)) -> AND(A,B,C), AND(A,B,D) (the paper's
        // Section 5.4 example).
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let b_ = b.event(t(1), "b");
        let c = b.event(t(2), "c");
        let d = b.event(t(3), "d");
        let or = PatternExpr::Or(vec![b.expr(c), b.expr(d)]);
        let ae = b.expr(a);
        let be = b.expr(b_);
        let p = b.and_exprs([ae, be, or]).unwrap();
        let cps = CompiledPattern::compile(&p).unwrap();
        assert_eq!(cps.len(), 2);
        assert_eq!(cps[0].n(), 3);
        assert!(cps[0].uses_type(t(2)));
        assert!(!cps[0].uses_type(t(3)));
        assert!(cps[1].uses_type(t(3)));
    }

    #[test]
    fn disjunction_of_sequences_dnf() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        let d = b.event(t(2), "d");
        let e = b.event(t(3), "e");
        let s1 = PatternExpr::Seq(vec![b.expr(a), b.expr(c)]);
        let s2 = PatternExpr::Seq(vec![b.expr(d), b.expr(e)]);
        let p = b.or_exprs([s1, s2]).unwrap();
        let cps = CompiledPattern::compile(&p).unwrap();
        assert_eq!(cps.len(), 2);
        assert_eq!(cps[0].op, NaryOp::Seq);
        assert_eq!(cps[1].op, NaryOp::Seq);
    }

    #[test]
    fn seq_nested_in_and_yields_partial_order() {
        // AND(A, SEQ(B, C)): B<C but A unordered.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let bb = b.event(t(1), "b");
        let c = b.event(t(2), "c");
        let s = PatternExpr::Seq(vec![b.expr(bb), b.expr(c)]);
        let ae = b.expr(a);
        let p = b.and_exprs([ae, s]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert_eq!(cp.op, NaryOp::And); // not a total order
        let bi = cp.elem_index(bb.pos()).unwrap();
        let ci = cp.elem_index(c.pos()).unwrap();
        let ai = cp.elem_index(a.pos()).unwrap();
        assert!(cp.must_precede(bi, ci));
        assert!(!cp.must_precede(ai, bi));
        assert!(!cp.must_precede(bi, ai));
    }

    #[test]
    fn kleene_flag_propagates() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let ke = b.kleene(k);
        let p = b.seq_exprs([ae, ke]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert!(cp.has_kleene());
        assert!(cp.elements[1].kleene);
    }

    #[test]
    fn negated_kleene_rejected() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let k = b.event(t(1), "k");
        let ae = b.expr(a);
        let nk = PatternExpr::Not(Box::new(b.kleene(k)));
        // NOT over KL(Event) is structurally invalid already at validate.
        assert!(b.seq_exprs([ae, nk]).is_err());
    }

    #[test]
    fn all_negative_branch_rejected() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let ne = b.not(a);
        assert!(matches!(
            b.seq_exprs([ne]).map(|p| CompiledPattern::compile(&p)),
            Ok(Err(_))
        ));
    }

    #[test]
    fn elements_sorted_in_temporal_order_for_seq_in_or() {
        // OR(SEQ(A,B), SEQ(B,A)) keeps each branch's own order.
        let mut b = PatternBuilder::new(100);
        let a1 = b.event(t(0), "a1");
        let b1 = b.event(t(1), "b1");
        let b2 = b.event(t(1), "b2");
        let a2 = b.event(t(0), "a2");
        let s1 = PatternExpr::Seq(vec![b.expr(a1), b.expr(b1)]);
        let s2 = PatternExpr::Seq(vec![b.expr(b2), b.expr(a2)]);
        let p = b.or_exprs([s1, s2]).unwrap();
        let cps = CompiledPattern::compile(&p).unwrap();
        assert_eq!(cps[0].elements[0].event_type, t(0));
        assert_eq!(cps[1].elements[0].event_type, t(1));
    }

    #[test]
    fn duplicate_types_allowed() {
        let mut b = PatternBuilder::new(100);
        let a1 = b.event(t(0), "a1");
        let a2 = b.event(t(0), "a2");
        let p = b.seq([a1, a2]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        assert_eq!(cp.elements_of_type(t(0)).count(), 2);
    }
}
