//! Matches and partial-match bindings shared by all engines.

use crate::compile::CompiledPattern;
use crate::event::{EventRef, Timestamp};
use crate::selection::SelectionStrategy;
use std::fmt;

/// The event(s) bound at one pattern position.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// A single event (ordinary element).
    One(EventRef),
    /// A non-empty event set (Kleene element), in serial-number order.
    Many(Vec<EventRef>),
}

impl Binding {
    /// Iterates over the bound events.
    pub fn events(&self) -> impl Iterator<Item = &EventRef> {
        match self {
            Binding::One(e) => std::slice::from_ref(e).iter(),
            Binding::Many(es) => es.iter(),
        }
    }

    /// Number of bound events.
    pub fn len(&self) -> usize {
        match self {
            Binding::One(_) => 1,
            Binding::Many(es) => es.len(),
        }
    }

    /// Whether no events are bound (only possible for an empty `Many`,
    /// which engines never emit).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum timestamp among bound events.
    pub fn min_ts(&self) -> Timestamp {
        self.events()
            .map(|e| e.ts)
            .min()
            .expect("non-empty binding")
    }

    /// Maximum timestamp among bound events.
    pub fn max_ts(&self) -> Timestamp {
        self.events()
            .map(|e| e.ts)
            .max()
            .expect("non-empty binding")
    }
}

/// A detected full match.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// `(pattern position, binding)` per positive element, in the compiled
    /// pattern's element order.
    pub bindings: Vec<(usize, Binding)>,
    /// Timestamp of the temporally last contributing event.
    pub last_ts: Timestamp,
    /// Watermark at emission time (differs from `last_ts` when emission was
    /// deferred for a trailing negation).
    pub emitted_at: Timestamp,
}

impl Match {
    /// Minimum timestamp over all bound events.
    pub fn min_ts(&self) -> Timestamp {
        self.bindings
            .iter()
            .map(|(_, b)| b.min_ts())
            .min()
            .expect("matches are non-empty")
    }

    /// Maximum timestamp over all bound events.
    pub fn max_ts(&self) -> Timestamp {
        self.bindings
            .iter()
            .map(|(_, b)| b.max_ts())
            .max()
            .expect("matches are non-empty")
    }

    /// All bound events, across positions.
    pub fn events(&self) -> impl Iterator<Item = &EventRef> {
        self.bindings.iter().flat_map(|(_, b)| b.events())
    }

    /// Canonical identity of the match: sorted `(position, sorted event
    /// serial numbers)`. Two matches with equal signatures bind the same
    /// events to the same positions. Used for result comparison in tests
    /// and duplicate suppression across DNF branches.
    pub fn signature(&self) -> Vec<(usize, Vec<u64>)> {
        let mut sig: Vec<(usize, Vec<u64>)> = self
            .bindings
            .iter()
            .map(|(pos, b)| {
                let mut seqs: Vec<u64> = b.events().map(|e| e.seq).collect();
                seqs.sort_unstable();
                (*pos, seqs)
            })
            .collect();
        sig.sort();
        sig
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (pos, b)) in self.bindings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "e{pos}=[")?;
            for (j, e) in b.events().enumerate() {
                if j > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "#{}", e.seq)?;
            }
            f.write_str("]")?;
        }
        f.write_str("}")
    }
}

/// Validates that a match satisfies the positive constraints of a compiled
/// pattern: distinct events, window, temporal order, predicates, and the
/// selection strategy's contiguity requirements.
///
/// Negation cannot be validated from the match alone (it asserts the
/// *absence* of stream events); use the naive oracle for that.
pub fn validate_match(cp: &CompiledPattern, m: &Match) -> Result<(), String> {
    if m.bindings.len() != cp.n() {
        return Err(format!(
            "expected {} bindings, got {}",
            cp.n(),
            m.bindings.len()
        ));
    }
    // Positions must correspond to elements; Kleene-ness must agree.
    for (i, (pos, b)) in m.bindings.iter().enumerate() {
        let Some(ei) = cp.elem_index(*pos) else {
            return Err(format!("binding references unknown position {pos}"));
        };
        if ei != i {
            return Err(format!("bindings out of element order at {i}"));
        }
        let elem = &cp.elements[ei];
        match b {
            Binding::One(e) => {
                if elem.kleene {
                    return Err(format!("element {ei} is Kleene but bound once"));
                }
                if e.type_id != elem.event_type {
                    return Err(format!("element {ei} bound to wrong type"));
                }
            }
            Binding::Many(es) => {
                if !elem.kleene {
                    return Err(format!("element {ei} is not Kleene but bound to a set"));
                }
                if es.is_empty() {
                    return Err(format!("element {ei} bound to an empty set"));
                }
                if es.iter().any(|e| e.type_id != elem.event_type) {
                    return Err(format!("element {ei} set contains wrong type"));
                }
            }
        }
    }
    // Distinctness.
    let mut seqs: Vec<u64> = m.events().map(|e| e.seq).collect();
    seqs.sort_unstable();
    if seqs.windows(2).any(|w| w[0] == w[1]) {
        return Err("an event is bound to two positions".into());
    }
    // Window.
    if m.max_ts() - m.min_ts() > cp.window {
        return Err(format!(
            "window violated: span {} > {}",
            m.max_ts() - m.min_ts(),
            cp.window
        ));
    }
    // Temporal order: every event of element i strictly before every event
    // of element j whenever i must precede j.
    for i in 0..cp.n() {
        for j in 0..cp.n() {
            if i != j && cp.must_precede(i, j) {
                let bi = &m.bindings[i].1;
                let bj = &m.bindings[j].1;
                if bi.max_ts() >= bj.min_ts() {
                    return Err(format!("temporal order violated between {i} and {j}"));
                }
            }
        }
    }
    // Predicates (Kleene positions: every member event must satisfy).
    for p in &cp.predicates {
        let (a, b) = p.position_pair();
        if a == usize::MAX {
            continue;
        }
        let Some(ea) = cp.elem_index(a) else {
            continue; // involves a negated position: not checkable here
        };
        match b {
            None => {
                for e in m.bindings[ea].1.events() {
                    if !p.eval_single(a, e) {
                        return Err(format!("filter {p} violated"));
                    }
                }
            }
            Some(bpos) => {
                let Some(eb) = cp.elem_index(bpos) else {
                    continue;
                };
                for x in m.bindings[ea].1.events() {
                    for y in m.bindings[eb].1.events() {
                        if !p.eval_pair(a, x, bpos, y) {
                            return Err(format!("predicate {p} violated"));
                        }
                    }
                }
            }
        }
    }
    // Contiguity.
    if cp.strategy.contiguous() {
        let mut evs: Vec<&EventRef> = m.events().collect();
        evs.sort_by_key(|e| e.seq);
        for w in evs.windows(2) {
            if !cp.strategy.neighbours_ok(w[0], w[1]) {
                return Err(format!(
                    "{} violated between #{} and #{}",
                    cp.strategy, w[0].seq, w[1].seq
                ));
            }
        }
        if cp.strategy == SelectionStrategy::PartitionContiguity {
            let p0 = evs[0].partition;
            if evs.iter().any(|e| e.partition != p0) {
                return Err("partition contiguity across partitions".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TypeId};
    use crate::pattern::PatternBuilder;
    use crate::predicate::{CmpOp, Predicate};
    use crate::value::Value;
    use std::sync::Arc;

    fn ev(tid: u32, ts: u64, seq: u64, x: i64) -> EventRef {
        let mut e = Event::new(TypeId(tid), ts, vec![Value::Int(x)]);
        e.seq = seq;
        Arc::new(e)
    }

    fn cp_seq2() -> CompiledPattern {
        let mut b = PatternBuilder::new(10);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap()
    }

    fn mk(bindings: Vec<(usize, Binding)>) -> Match {
        let last_ts = bindings
            .iter()
            .flat_map(|(_, b)| b.events().map(|e| e.ts).collect::<Vec<_>>())
            .max()
            .unwrap();
        Match {
            bindings,
            last_ts,
            emitted_at: last_ts,
        }
    }

    #[test]
    fn valid_match_passes() {
        let cp = cp_seq2();
        let m = mk(vec![
            (0, Binding::One(ev(0, 1, 0, 1))),
            (1, Binding::One(ev(1, 2, 1, 5))),
        ]);
        assert_eq!(validate_match(&cp, &m), Ok(()));
    }

    #[test]
    fn window_violation_detected() {
        let cp = cp_seq2();
        let m = mk(vec![
            (0, Binding::One(ev(0, 1, 0, 1))),
            (1, Binding::One(ev(1, 50, 1, 5))),
        ]);
        assert!(validate_match(&cp, &m).unwrap_err().contains("window"));
    }

    #[test]
    fn order_violation_detected() {
        let cp = cp_seq2();
        let m = mk(vec![
            (0, Binding::One(ev(0, 5, 1, 1))),
            (1, Binding::One(ev(1, 2, 0, 5))),
        ]);
        assert!(validate_match(&cp, &m).unwrap_err().contains("order"));
    }

    #[test]
    fn predicate_violation_detected() {
        let cp = cp_seq2();
        let m = mk(vec![
            (0, Binding::One(ev(0, 1, 0, 9))),
            (1, Binding::One(ev(1, 2, 1, 5))),
        ]);
        assert!(validate_match(&cp, &m).unwrap_err().contains("predicate"));
    }

    #[test]
    fn duplicate_event_detected() {
        let cp = cp_seq2();
        let e = ev(0, 1, 0, 1);
        let mut e2 = (*e).clone();
        e2.type_id = TypeId(1);
        e2.ts = 2;
        // Same seq bound twice.
        let m = mk(vec![(0, Binding::One(e)), (1, Binding::One(Arc::new(e2)))]);
        assert!(validate_match(&cp, &m)
            .unwrap_err()
            .contains("two positions"));
    }

    #[test]
    fn signature_is_canonical() {
        let m1 = mk(vec![
            (0, Binding::One(ev(0, 1, 0, 1))),
            (1, Binding::One(ev(1, 2, 1, 5))),
        ]);
        let m2 = mk(vec![
            (0, Binding::One(ev(0, 1, 0, 7))),
            (1, Binding::One(ev(1, 2, 1, 9))),
        ]);
        assert_eq!(m1.signature(), m2.signature()); // same (pos, seq) shape
        assert_eq!(m1.signature(), vec![(0, vec![0]), (1, vec![1])]);
    }

    #[test]
    fn binding_extremes() {
        let b = Binding::Many(vec![ev(0, 3, 0, 0), ev(0, 7, 1, 0)]);
        assert_eq!(b.min_ts(), 3);
        assert_eq!(b.max_ts(), 7);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn display_compact() {
        let m = mk(vec![(0, Binding::One(ev(0, 1, 4, 1)))]);
        assert_eq!(m.to_string(), "{e0=[#4]}");
    }
}
