//! Event type schemas and the type catalog.

use crate::error::CepError;
use crate::event::TypeId;
use std::collections::HashMap;
use std::fmt;

/// Kind of an attribute value (see [`crate::value::Value`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Bool => "bool",
            ValueKind::Str => "str",
        };
        f.write_str(s)
    }
}

/// Declaration of a single event attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Declared kind.
    pub kind: ValueKind,
}

/// Schema of one primitive event type.
///
/// The paper assumes every primitive event has a well-defined type
/// (Section 2.1); a schema declares the attribute tuple carried by events of
/// that type. The occurrence timestamp and stream serial number are intrinsic
/// to every event and are not part of the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSchema {
    /// Identifier assigned by the catalog.
    pub type_id: TypeId,
    /// Human-readable type name (e.g., a stock ticker).
    pub name: String,
    /// Declared attributes, addressed by index in events.
    pub attributes: Vec<AttributeDef>,
}

impl EventSchema {
    /// Index of the attribute named `name`, if declared.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

/// Registry of event types known to a CEP deployment.
///
/// Types are registered once and addressed by [`TypeId`] thereafter; all
/// pattern and engine code paths work with ids, never names.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    schemas: Vec<EventSchema>,
    by_name: HashMap<String, TypeId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new event type and returns its id.
    ///
    /// # Errors
    /// Returns [`CepError::Schema`] if the name is already registered or an
    /// attribute name is duplicated.
    pub fn add_type(
        &mut self,
        name: &str,
        attributes: &[(&str, ValueKind)],
    ) -> Result<TypeId, CepError> {
        if self.by_name.contains_key(name) {
            return Err(CepError::Schema(format!(
                "event type {name:?} already registered"
            )));
        }
        for (i, (a, _)) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|(b, _)| a == b) {
                return Err(CepError::Schema(format!(
                    "duplicate attribute {a:?} in event type {name:?}"
                )));
            }
        }
        let type_id = TypeId(self.schemas.len() as u32);
        self.schemas.push(EventSchema {
            type_id,
            name: name.to_owned(),
            attributes: attributes
                .iter()
                .map(|(n, k)| AttributeDef {
                    name: (*n).to_owned(),
                    kind: *k,
                })
                .collect(),
        });
        self.by_name.insert(name.to_owned(), type_id);
        Ok(type_id)
    }

    /// Looks up a type id by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Schema of a registered type.
    pub fn schema(&self, id: TypeId) -> Option<&EventSchema> {
        self.schemas.get(id.0 as usize)
    }

    /// Name of a registered type, or `"?<id>"` if unknown.
    pub fn type_name(&self, id: TypeId) -> String {
        self.schema(id)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("?{}", id.0))
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over all registered schemas.
    pub fn iter(&self) -> impl Iterator<Item = &EventSchema> {
        self.schemas.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat
            .add_type(
                "MSFT",
                &[
                    ("price", ValueKind::Float),
                    ("difference", ValueKind::Float),
                ],
            )
            .unwrap();
        let b = cat
            .add_type("GOOG", &[("price", ValueKind::Float)])
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(cat.type_id("MSFT"), Some(a));
        assert_eq!(cat.schema(a).unwrap().attr_index("difference"), Some(1));
        assert_eq!(cat.schema(b).unwrap().attr_index("difference"), None);
        assert_eq!(cat.type_name(a), "MSFT");
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut cat = Catalog::new();
        cat.add_type("A", &[]).unwrap();
        assert!(cat.add_type("A", &[]).is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut cat = Catalog::new();
        let err = cat.add_type("A", &[("x", ValueKind::Int), ("x", ValueKind::Int)]);
        assert!(err.is_err());
    }

    #[test]
    fn unknown_type_name() {
        let cat = Catalog::new();
        assert_eq!(cat.type_name(TypeId(9)), "?9");
        assert!(cat.is_empty());
    }
}
