//! Attribute values carried by events.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed attribute value.
///
/// Events carry a fixed-arity tuple of `Value`s whose kinds are declared by
/// the [`EventSchema`](crate::schema::EventSchema) of their type. Comparisons
/// between `Int` and `Float` are performed numerically, mirroring the loose
/// typing of CEP specification languages such as SASE.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned string (cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Kind of this value, for schema validation.
    pub fn kind(&self) -> crate::schema::ValueKind {
        use crate::schema::ValueKind;
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Bool(_) => ValueKind::Bool,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Total comparison used by predicate evaluation.
    ///
    /// Numeric values compare numerically across `Int`/`Float`; other kinds
    /// compare only within the same kind. Cross-kind non-numeric comparisons
    /// return `None` and the enclosing predicate evaluates to `false`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_kind_comparison() {
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).partial_cmp_value(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn string_comparison() {
        assert_eq!(
            Value::from("abc").partial_cmp_value(&Value::from("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incompatible_kinds_do_not_compare() {
        assert_eq!(Value::from("abc").partial_cmp_value(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).partial_cmp_value(&Value::Int(1)), None);
    }

    #[test]
    fn kind_reporting() {
        use crate::schema::ValueKind;
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::Bool(true).kind(), ValueKind::Bool);
        assert_eq!(Value::from("x").kind(), ValueKind::Str);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }
}
