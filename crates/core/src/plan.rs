//! Evaluation plans (Section 3.1).
//!
//! An [`OrderPlan`] drives the order-based (lazy NFA) engine: a permutation
//! of the positive elements giving the order in which events are matched.
//! A [`TreePlan`] drives the tree-based engine: a binary tree whose leaves
//! are the positive elements and whose internal nodes combine partial
//! matches. Both reference elements of a [`CompiledPattern`] by index.

use crate::compile::CompiledPattern;
use crate::error::CepError;
use std::fmt;

/// An order-based evaluation plan: a permutation of element indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderPlan {
    order: Vec<usize>,
}

impl OrderPlan {
    /// Creates a plan from a permutation of `0..n`.
    pub fn new(order: Vec<usize>) -> Result<OrderPlan, CepError> {
        let n = order.len();
        let mut seen = vec![false; n];
        for &i in &order {
            if i >= n || seen[i] {
                return Err(CepError::Plan(format!(
                    "order {order:?} is not a permutation of 0..{n}"
                )));
            }
            seen[i] = true;
        }
        Ok(OrderPlan { order })
    }

    /// The trivial plan: elements in specification order (for sequences,
    /// the temporal order). This is the paper's TRIVIAL baseline.
    pub fn trivial(cp: &CompiledPattern) -> OrderPlan {
        OrderPlan {
            order: (0..cp.n()).collect(),
        }
    }

    /// Validates that the plan fits a compiled pattern.
    pub fn validate(&self, cp: &CompiledPattern) -> Result<(), CepError> {
        if self.order.len() != cp.n() {
            return Err(CepError::Plan(format!(
                "plan covers {} elements, pattern has {}",
                self.order.len(),
                cp.n()
            )));
        }
        Ok(())
    }

    /// The processing order (element indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Step (state index) at which element `elem` is matched.
    pub fn step_of(&self, elem: usize) -> Option<usize> {
        self.order.iter().position(|&e| e == elem)
    }

    /// Canonical signature of this plan *for the given pattern*: folds the
    /// pattern's [`CompiledPattern::signature`] with the processing order,
    /// so two equal signatures denote the same pattern evaluated in the
    /// same order.
    pub fn signature(&self, cp: &CompiledPattern) -> u64 {
        let mut h = crate::compiled::SigHasher::new();
        h.write_u64(cp.signature());
        h.write_u8(0); // plan-kind tag: order
        for &e in &self.order {
            h.write_u64(e as u64);
        }
        h.finish()
    }
}

impl fmt::Display for OrderPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, e) in self.order.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "e{e}")?;
        }
        f.write_str("]")
    }
}

/// A node of a tree plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// A leaf accepting one positive element.
    Leaf(usize),
    /// An internal node joining two subtrees.
    Node(Box<TreeNode>, Box<TreeNode>),
}

impl TreeNode {
    /// Convenience constructor for an internal node.
    pub fn join(left: TreeNode, right: TreeNode) -> TreeNode {
        TreeNode::Node(Box::new(left), Box::new(right))
    }

    /// Element indices of the leaves, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            TreeNode::Leaf(i) => out.push(*i),
            TreeNode::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Bitmask of the leaves under this node (element indices < 64).
    pub fn leaf_mask(&self) -> u64 {
        match self {
            TreeNode::Leaf(i) => 1u64 << i,
            TreeNode::Node(l, r) => l.leaf_mask() | r.leaf_mask(),
        }
    }

    /// Total node count (leaves + internal).
    pub fn node_count(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Node(l, r) => 1 + l.node_count() + r.node_count(),
        }
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            TreeNode::Leaf(_) => 1,
            TreeNode::Node(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// Whether the tree is left-deep: every right child is a leaf.
    pub fn is_left_deep(&self) -> bool {
        match self {
            TreeNode::Leaf(_) => true,
            TreeNode::Node(l, r) => matches!(**r, TreeNode::Leaf(_)) && l.is_left_deep(),
        }
    }

    /// Builds the left-deep tree that joins elements in the given order
    /// (the shape equivalence of Figure 2(a) to an order plan).
    pub fn left_deep(order: &[usize]) -> TreeNode {
        assert!(!order.is_empty(), "left-deep tree needs >= 1 leaf");
        let mut it = order.iter();
        let mut node = TreeNode::Leaf(*it.next().expect("non-empty"));
        for &e in it {
            node = TreeNode::join(node, TreeNode::Leaf(e));
        }
        node
    }
}

impl fmt::Display for TreeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeNode::Leaf(i) => write!(f, "e{i}"),
            TreeNode::Node(l, r) => write!(f, "({l} {r})"),
        }
    }
}

/// A tree-based evaluation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePlan {
    /// Root of the plan tree.
    pub root: TreeNode,
}

impl TreePlan {
    /// Creates a plan, checking that leaves form a permutation of `0..n`
    /// for some `n`.
    pub fn new(root: TreeNode) -> Result<TreePlan, CepError> {
        let leaves = root.leaves();
        let n = leaves.len();
        let mut seen = vec![false; n];
        for &i in &leaves {
            if i >= n || seen[i] {
                return Err(CepError::Plan(format!(
                    "tree leaves {leaves:?} are not a permutation of 0..{n}"
                )));
            }
            seen[i] = true;
        }
        Ok(TreePlan { root })
    }

    /// Left-deep plan following an order (used to compare order-based and
    /// tree-based algorithms on equal footing).
    pub fn left_deep(plan: &OrderPlan) -> TreePlan {
        TreePlan {
            root: TreeNode::left_deep(plan.order()),
        }
    }

    /// Validates that the plan fits a compiled pattern.
    pub fn validate(&self, cp: &CompiledPattern) -> Result<(), CepError> {
        let leaves = self.root.leaves();
        if leaves.len() != cp.n() {
            return Err(CepError::Plan(format!(
                "tree covers {} elements, pattern has {}",
                leaves.len(),
                cp.n()
            )));
        }
        Ok(())
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.root.leaves().len()
    }

    /// Whether the plan has no leaves (never true for valid plans).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical signature of this plan *for the given pattern*: folds the
    /// pattern's [`CompiledPattern::signature`] with a pre-order encoding
    /// of the tree shape and its leaf assignment.
    pub fn signature(&self, cp: &CompiledPattern) -> u64 {
        fn walk(h: &mut crate::compiled::SigHasher, node: &TreeNode) {
            match node {
                TreeNode::Leaf(i) => {
                    h.write_u8(0);
                    h.write_u64(*i as u64);
                }
                TreeNode::Node(l, r) => {
                    h.write_u8(1);
                    walk(h, l);
                    walk(h, r);
                }
            }
        }
        let mut h = crate::compiled::SigHasher::new();
        h.write_u64(cp.signature());
        h.write_u8(1); // plan-kind tag: tree
        walk(&mut h, &self.root);
        h.finish()
    }
}

impl fmt::Display for TreePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TypeId;
    use crate::pattern::PatternBuilder;

    fn cp3() -> CompiledPattern {
        let mut b = PatternBuilder::new(10);
        let a = b.event(TypeId(0), "a");
        let c = b.event(TypeId(1), "b");
        let d = b.event(TypeId(2), "c");
        CompiledPattern::compile_single(&b.seq([a, c, d]).unwrap()).unwrap()
    }

    #[test]
    fn order_plan_validation() {
        assert!(OrderPlan::new(vec![2, 0, 1]).is_ok());
        assert!(OrderPlan::new(vec![0, 0, 1]).is_err());
        assert!(OrderPlan::new(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn trivial_plan_is_identity() {
        let cp = cp3();
        let p = OrderPlan::trivial(&cp);
        assert_eq!(p.order(), &[0, 1, 2]);
        assert!(p.validate(&cp).is_ok());
        assert_eq!(p.step_of(1), Some(1));
    }

    #[test]
    fn mismatched_plan_rejected() {
        let cp = cp3();
        let p = OrderPlan::new(vec![1, 0]).unwrap();
        assert!(p.validate(&cp).is_err());
    }

    #[test]
    fn tree_plan_leaves_must_be_permutation() {
        let t = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
            TreeNode::Leaf(2),
        );
        assert!(TreePlan::new(t).is_ok());
        let dup = TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(0));
        assert!(TreePlan::new(dup).is_err());
    }

    #[test]
    fn left_deep_shape() {
        let t = TreeNode::left_deep(&[2, 0, 1]);
        assert!(t.is_left_deep());
        assert_eq!(t.leaves(), vec![2, 0, 1]);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.height(), 3);
        let bushy = TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
            TreeNode::join(TreeNode::Leaf(2), TreeNode::Leaf(3)),
        );
        assert!(!bushy.is_left_deep());
        assert_eq!(bushy.height(), 3);
    }

    #[test]
    fn leaf_mask_is_set_of_leaves() {
        let t = TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(3));
        assert_eq!(t.leaf_mask(), 0b1001);
    }

    #[test]
    fn plan_signatures_fold_pattern_and_shape() {
        let cp = cp3();
        let a = OrderPlan::new(vec![0, 1, 2]).unwrap();
        let b = OrderPlan::new(vec![0, 1, 2]).unwrap();
        let c = OrderPlan::new(vec![2, 0, 1]).unwrap();
        assert_eq!(a.signature(&cp), b.signature(&cp));
        assert_ne!(a.signature(&cp), c.signature(&cp));
        let left = TreePlan::left_deep(&a);
        let bushy = TreePlan::new(TreeNode::join(
            TreeNode::join(TreeNode::Leaf(0), TreeNode::Leaf(1)),
            TreeNode::Leaf(2),
        ))
        .unwrap();
        // A left-deep 3-leaf tree in 0,1,2 order IS ((0 1) 2): same shape,
        // same signature; a different leaf order differs.
        assert_eq!(left.signature(&cp), bushy.signature(&cp));
        let other = TreePlan::left_deep(&c);
        assert_ne!(left.signature(&cp), other.signature(&cp));
        // Order and tree plans never collide (kind tag).
        assert_ne!(a.signature(&cp), left.signature(&cp));
    }

    #[test]
    fn display_formats() {
        let p = OrderPlan::new(vec![1, 0]).unwrap();
        assert_eq!(p.to_string(), "[e1 -> e0]");
        let t = TreeNode::join(TreeNode::Leaf(1), TreeNode::Leaf(0));
        assert_eq!(t.to_string(), "(e1 e0)");
    }
}
