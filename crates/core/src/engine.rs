//! The engine abstraction shared by the NFA, tree, and naive evaluators.

use crate::matches::Match;
use crate::metrics::EngineMetrics;
use crate::stream::EventStream;
use cep_obs::{TraceRecord, Tracer};
use std::collections::HashMap;
use std::time::Instant;

/// Runtime knobs common to all engines.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Upper bound on the number of events a single Kleene element may
    /// accumulate per partial match. The power-set semantics of Section 5.2
    /// is exponential by design; this cap keeps pathological inputs from
    /// exhausting memory. Matches the naive oracle's cap so equivalence
    /// tests remain exact.
    pub max_kleene_events: usize,
    /// Prune window-expired state every `prune_every` events.
    pub prune_every: u64,
    /// Evaluate predicates through the compiled pipeline
    /// ([`crate::compiled::PredicateProgram`]) instead of interpreting the
    /// predicate ASTs per evaluation. Semantics are identical; the compiled
    /// path resolves operands and fuses conjunctive interval filters at
    /// plan-build time. On by default; switch off to measure the
    /// interpreted baseline.
    pub compiled_predicates: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_kleene_events: 16,
            prune_every: 64,
            compiled_predicates: true,
        }
    }
}

/// A pattern evaluation engine.
///
/// Engines consume a ts-ordered stream one event at a time and append
/// detected matches to `out`. [`Engine::flush`] signals end-of-stream,
/// releasing matches whose emission was deferred (trailing negations).
pub trait Engine {
    /// Processes one event, appending any matches it completes.
    fn process(&mut self, event: &crate::event::EventRef, out: &mut Vec<Match>);

    /// Signals end-of-stream; releases deferred matches.
    fn flush(&mut self, out: &mut Vec<Match>);

    /// Runtime metrics collected so far.
    fn metrics(&self) -> &EngineMetrics;

    /// Mutable access for the harness (timing is recorded externally).
    fn metrics_mut(&mut self) -> &mut EngineMetrics;

    /// Engine kind, for reports.
    fn name(&self) -> &'static str;
}

/// Builds fresh engine instances from a shared, already-compiled plan.
///
/// A factory is the unit of work handed to parallel runtimes such as
/// `cep-shard`: one factory is shared (by reference) across worker threads
/// and each worker builds and exclusively owns its private engine, so the
/// engines themselves never cross a thread boundary. Pattern and plan data
/// in this workspace is immutable after planning, which is why `Send +
/// Sync` on the factory suffices.
pub trait EngineFactory: Send + Sync {
    /// Builds a fresh engine positioned at stream start.
    fn build(&self) -> Box<dyn Engine>;
}

impl<F> EngineFactory for F
where
    F: Fn() -> Box<dyn Engine> + Send + Sync,
{
    fn build(&self) -> Box<dyn Engine> {
        self()
    }
}

/// Result of driving an engine over a complete stream.
#[derive(Debug)]
pub struct RunResult {
    /// Detected matches (empty when `collect_matches` was false).
    pub matches: Vec<Match>,
    /// Number of matches detected (tracked even when not collected).
    pub match_count: u64,
    /// Final metrics snapshot.
    pub metrics: EngineMetrics,
}

/// One event in every `2^EVENT_SAMPLE_SHIFT` gets its processing time
/// recorded into [`EngineMetrics::event_ns`]. Sampling keeps the hot loop
/// at one extra clock read per 8 events while still filling the histogram
/// with thousands of samples on any realistic stream.
const EVENT_SAMPLE_SHIFT: u32 = 3;

/// Drives `engine` over `stream`, recording wall time and per-match
/// latency. With `collect_matches == false` matches are counted and
/// discarded, keeping harness memory flat on large runs.
pub fn run_to_completion(
    engine: &mut dyn Engine,
    stream: &EventStream,
    collect_matches: bool,
) -> RunResult {
    run_traced(engine, stream, collect_matches, &Tracer::disabled())
}

/// [`run_to_completion`] with a [`Tracer`]: emits a
/// [`TraceRecord::MatchEmitted`] per detected match. Tracing only
/// observes — match content, order, and metrics are identical to an
/// untraced run.
pub fn run_traced(
    engine: &mut dyn Engine,
    stream: &EventStream,
    collect_matches: bool,
    tracer: &Tracer,
) -> RunResult {
    let mut matches = Vec::new();
    let mut scratch = Vec::new();
    let mut match_count = 0u64;
    let mut seen = 0u64;
    let start = Instant::now();
    for event in stream {
        let ev_start = Instant::now();
        engine.process(event, &mut scratch);
        seen += 1;
        if seen & ((1 << EVENT_SAMPLE_SHIFT) - 1) == 0 {
            let dt = ev_start.elapsed().as_nanos() as u64;
            engine.metrics_mut().event_ns.record(dt);
        }
        if !scratch.is_empty() {
            let latency = ev_start.elapsed().as_nanos() as u64;
            let m = engine.metrics_mut();
            m.match_latency_ns.record_n(latency, scratch.len() as u64);
            match_count += scratch.len() as u64;
            for mt in &scratch {
                tracer.emit_with(|| TraceRecord::MatchEmitted {
                    emitted_at: mt.emitted_at,
                    last_ts: mt.last_ts,
                    latency_ns: latency,
                });
            }
            if collect_matches {
                matches.append(&mut scratch);
            } else {
                scratch.clear();
            }
        }
    }
    let flush_start = Instant::now();
    engine.flush(&mut scratch);
    if !scratch.is_empty() {
        let latency = flush_start.elapsed().as_nanos() as u64;
        let m = engine.metrics_mut();
        m.match_latency_ns.record_n(latency, scratch.len() as u64);
        match_count += scratch.len() as u64;
        for mt in &scratch {
            tracer.emit_with(|| TraceRecord::MatchEmitted {
                emitted_at: mt.emitted_at,
                last_ts: mt.last_ts,
                latency_ns: latency,
            });
        }
        if collect_matches {
            matches.append(&mut scratch);
        } else {
            scratch.clear();
        }
    }
    let wall = start.elapsed().as_nanos() as u64;
    engine.metrics_mut().wall_time_ns += wall;
    RunResult {
        matches,
        match_count,
        metrics: engine.metrics().clone(),
    }
}

/// Evaluates several engines (one per DNF branch of a nested pattern) as a
/// unit, returning the union of their matches (Section 5.4).
///
/// Duplicate matches — possible when branches overlap — are suppressed via
/// match signatures, remembered for one window length.
pub struct MultiEngine {
    engines: Vec<Box<dyn Engine>>,
    window: u64,
    seen: HashMap<Vec<(usize, Vec<u64>)>, u64>,
    metrics: EngineMetrics,
    name: &'static str,
}

impl MultiEngine {
    /// Wraps a set of branch engines sharing one pattern window.
    pub fn new(engines: Vec<Box<dyn Engine>>, window: u64) -> MultiEngine {
        assert!(!engines.is_empty(), "MultiEngine needs >= 1 branch engine");
        MultiEngine {
            engines,
            window,
            seen: HashMap::new(),
            metrics: EngineMetrics::new(),
            name: "multi",
        }
    }

    /// Number of branch engines.
    pub fn branches(&self) -> usize {
        self.engines.len()
    }

    fn dedup(&mut self, staged: Vec<Match>, out: &mut Vec<Match>) {
        for m in staged {
            let sig = m.signature();
            let ts = m.max_ts();
            if self.seen.insert(sig, ts).is_none() {
                out.push(m);
            }
        }
    }

    fn refresh_metrics(&mut self) {
        let mut agg = EngineMetrics::new();
        agg.events_processed = self.metrics.events_processed;
        agg.wall_time_ns = self.metrics.wall_time_ns;
        // The harness records latency/event-time histograms on *our*
        // metrics, not the branch engines' — carry them over.
        agg.event_ns = self.metrics.event_ns.clone();
        agg.match_latency_ns = self.metrics.match_latency_ns.clone();
        agg.replay_ns = self.metrics.replay_ns.clone();
        for e in &self.engines {
            agg.absorb(e.metrics());
        }
        // Deduplication may have dropped some emissions: count our own.
        agg.matches_emitted = self.metrics.matches_emitted;
        self.metrics = agg;
    }
}

impl Engine for MultiEngine {
    fn process(&mut self, event: &crate::event::EventRef, out: &mut Vec<Match>) {
        self.metrics.events_processed += 1;
        let mut staged = Vec::new();
        for e in &mut self.engines {
            e.process(event, &mut staged);
        }
        let before = out.len();
        self.dedup(staged, out);
        self.metrics.matches_emitted += (out.len() - before) as u64;
        // Forget signatures that can no longer recur (outside the window).
        if self.metrics.events_processed.is_multiple_of(256) {
            let horizon = event.ts.saturating_sub(self.window);
            self.seen.retain(|_, &mut ts| ts >= horizon);
        }
        self.refresh_metrics();
    }

    fn flush(&mut self, out: &mut Vec<Match>) {
        let mut staged = Vec::new();
        for e in &mut self.engines {
            e.flush(&mut staged);
        }
        let before = out.len();
        self.dedup(staged, out);
        self.metrics.matches_emitted += (out.len() - before) as u64;
        self.refresh_metrics();
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventRef, TypeId};
    use crate::matches::Binding;
    use std::sync::Arc;

    /// Emits a fixed match whenever it sees type 0.
    struct StubEngine {
        metrics: EngineMetrics,
        sig_seq: u64,
    }

    impl StubEngine {
        fn new(sig_seq: u64) -> Self {
            StubEngine {
                metrics: EngineMetrics::new(),
                sig_seq,
            }
        }
    }

    impl Engine for StubEngine {
        fn process(&mut self, event: &EventRef, out: &mut Vec<Match>) {
            self.metrics.events_processed += 1;
            if event.type_id == TypeId(0) {
                let mut e = Event::new(TypeId(0), event.ts, vec![]);
                e.seq = self.sig_seq;
                out.push(Match {
                    bindings: vec![(0, Binding::One(Arc::new(e)))],
                    last_ts: event.ts,
                    emitted_at: event.ts,
                });
                self.metrics.matches_emitted += 1;
            }
        }
        fn flush(&mut self, _out: &mut Vec<Match>) {}
        fn metrics(&self) -> &EngineMetrics {
            &self.metrics
        }
        fn metrics_mut(&mut self) -> &mut EngineMetrics {
            &mut self.metrics
        }
        fn name(&self) -> &'static str {
            "stub"
        }
    }

    fn ev(tid: u32, ts: u64) -> EventRef {
        Arc::new(Event::new(TypeId(tid), ts, vec![]))
    }

    #[test]
    fn run_to_completion_times_and_counts() {
        let mut e = StubEngine::new(0);
        let stream = vec![ev(0, 1), ev(1, 2), ev(0, 3)];
        let r = run_to_completion(&mut e, &stream, true);
        assert_eq!(r.match_count, 2);
        assert_eq!(r.matches.len(), 2);
        assert_eq!(r.metrics.events_processed, 3);
        assert!(r.metrics.throughput_eps() > 0.0);
    }

    #[test]
    fn run_without_collection_still_counts() {
        let mut e = StubEngine::new(0);
        let stream = vec![ev(0, 1), ev(0, 2)];
        let r = run_to_completion(&mut e, &stream, false);
        assert_eq!(r.match_count, 2);
        assert!(r.matches.is_empty());
    }

    #[test]
    fn closure_factories_build_independent_engines() {
        let factory = || Box::new(StubEngine::new(0)) as Box<dyn Engine>;
        let f: &dyn EngineFactory = &factory;
        let mut a = f.build();
        let b = f.build();
        let mut out = Vec::new();
        a.process(&ev(0, 1), &mut out);
        assert_eq!(a.metrics().events_processed, 1);
        assert_eq!(b.metrics().events_processed, 0, "engines are independent");
    }

    #[test]
    fn multi_engine_dedups_identical_matches() {
        // Two branches emitting the same signature: only one survives.
        let me = MultiEngine::new(
            vec![Box::new(StubEngine::new(7)), Box::new(StubEngine::new(7))],
            10,
        );
        let mut me = me;
        let mut out = Vec::new();
        me.process(&ev(0, 1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(me.branches(), 2);
    }

    #[test]
    fn multi_engine_unions_distinct_matches() {
        let mut me = MultiEngine::new(
            vec![Box::new(StubEngine::new(1)), Box::new(StubEngine::new(2))],
            10,
        );
        let mut out = Vec::new();
        me.process(&ev(0, 1), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(me.metrics().matches_emitted, 2);
    }
}
