//! Replicate-join partition analysis for cross-partition sharded execution.
//!
//! A sharded runtime that *splits* the stream is exact only when every
//! match's events land on one shard. Partition-local queries (all elements
//! linked by key-equality predicates on the routing attribute) have that
//! property under plain hash routing; arbitrary queries do not. Following
//! the replicated-join construction of Dossinger & Michel (*Optimizing
//! Multiple Multi-Way Stream Joins*, arXiv:2104.07742), exactness is
//! recovered for any query by splitting its event types into two classes:
//!
//! * **partitioned** types are hashed by a join-key attribute, so all
//!   key-linked events of a match share a shard — this side stays scaled;
//! * **replicated** types are broadcast to *every* shard, so whatever a
//!   match needs beyond the key group is present wherever the match lands.
//!
//! The [`QueryPartitioner`] computes that classification from a compiled
//! pattern's equality predicates: it builds, per DNF branch, a graph over
//! `(element, attribute)` nodes connected by `==` predicates, and searches
//! for the assignment of key attributes that keeps the largest estimated
//! event rate partitioned (replicating the low-rate side). Types that
//! cannot be proven key-linked in every branch are replicated.
//!
//! Soundness rules encoded here (see `valid_for`):
//!
//! * within a branch, all *positive* elements of partitioned types must
//!   sit in **one** connected component of the equality graph built from
//!   predicates **between positive elements only**, through their assigned
//!   key attributes — otherwise one match could span several keys and
//!   therefore several shards. Predicates that involve a negated element
//!   never join this component: they are only ever evaluated against
//!   candidate *negation* events, so they constrain no positive binding
//!   (two positives "linked" solely through a negated mediator are not
//!   key-equal);
//! * a negated element of a partitioned type requires a positive
//!   partitioned element in the same branch and a *direct* equality
//!   predicate into that key component — otherwise shards that never see
//!   the forbidding events would emit false matches;
//! * a branch whose only partitioned element is a single positive element
//!   needs no equality link at all (its own key attribute routes the
//!   match).
//!
//! Matches containing no partitioned event are detected by *every* shard;
//! the sharded merge deduplicates them by signature (exactly like
//! [`crate::engine::MultiEngine`] deduplicates across DNF branches).

use crate::compile::CompiledPattern;
use crate::error::CepError;
use crate::event::TypeId;
use crate::predicate::{CmpOp, Operand};
use crate::stats::MeasuredStats;
use crate::union_find::UnionFind;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// How a sharded router treats events of one type under replicate-join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeDisposition {
    /// Hash the attribute at this index; key-equal events share a shard.
    Partitioned {
        /// Attribute index carrying the join key.
        attr: usize,
    },
    /// Broadcast every event of this type to all shards.
    Replicated,
}

impl fmt::Display for TypeDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeDisposition::Partitioned { attr } => write!(f, "partitioned(a{attr})"),
            TypeDisposition::Replicated => f.write_str("replicated"),
        }
    }
}

/// A per-type routing classification produced by [`QueryPartitioner`].
///
/// Covers exactly the event types the analyzed query uses; a sharded
/// router treats types outside the spec as irrelevant to the query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSpec {
    dispositions: BTreeMap<TypeId, TypeDisposition>,
}

impl PartitionSpec {
    /// Builds a spec from explicit per-type dispositions. Prefer
    /// [`QueryPartitioner::analyze`], which derives a sound spec from the
    /// query; hand-built specs should be checked with
    /// [`PartitionSpec::validate`].
    pub fn new(dispositions: impl IntoIterator<Item = (TypeId, TypeDisposition)>) -> PartitionSpec {
        PartitionSpec {
            dispositions: dispositions.into_iter().collect(),
        }
    }

    /// The disposition of a type, or `None` if the query does not use it.
    pub fn disposition(&self, ty: TypeId) -> Option<TypeDisposition> {
        self.dispositions.get(&ty).copied()
    }

    /// Iterates `(type, disposition)` in type-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, TypeDisposition)> + '_ {
        self.dispositions.iter().map(|(&t, &d)| (t, d))
    }

    /// Types hashed by a key attribute, in type-id order.
    pub fn partitioned_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.iter().filter_map(|(t, d)| match d {
            TypeDisposition::Partitioned { .. } => Some(t),
            TypeDisposition::Replicated => None,
        })
    }

    /// Types broadcast to every shard, in type-id order.
    pub fn replicated_types(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.iter().filter_map(|(t, d)| match d {
            TypeDisposition::Replicated => Some(t),
            TypeDisposition::Partitioned { .. } => None,
        })
    }

    /// Whether every type is partitioned (the query is partition-local on
    /// the assigned key attributes: no replication overhead at all).
    pub fn is_fully_partitioned(&self) -> bool {
        !self.dispositions.is_empty() && self.replicated_types().next().is_none()
    }

    /// Whether every type is replicated (each shard sees the whole stream;
    /// exact, but without scale-out for this query).
    pub fn is_fully_replicated(&self) -> bool {
        self.partitioned_types().next().is_none()
    }

    /// Checks that this spec is sound for the given compiled branches:
    /// every used type has a disposition and the partitioned types satisfy
    /// the key-connectivity rules (see the module docs).
    pub fn validate(&self, branches: &[CompiledPattern]) -> Result<(), CepError> {
        if branches.is_empty() {
            return Err(CepError::Routing(
                "partition spec validated against zero pattern branches".into(),
            ));
        }
        for ty in used_types(branches) {
            if self.disposition(ty).is_none() {
                return Err(CepError::Routing(format!(
                    "partition spec has no disposition for event type {}; \
                     every type the query uses must be partitioned or replicated",
                    ty.0
                )));
            }
        }
        let attrs: HashMap<TypeId, usize> = self
            .iter()
            .filter_map(|(t, d)| match d {
                TypeDisposition::Partitioned { attr } => Some((t, attr)),
                TypeDisposition::Replicated => None,
            })
            .collect();
        for (bi, (branch, graph)) in branches.iter().zip(branch_graphs(branches)).enumerate() {
            valid_for(branch, &graph, &attrs).map_err(|why| {
                CepError::Routing(format!(
                    "partition spec is unsound for branch {bi}: {why}; \
                     replicate the offending type or re-run QueryPartitioner::analyze"
                ))
            })?;
        }
        Ok(())
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (t, d)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "T{}: {d}", t.0)?;
        }
        f.write_str("}")
    }
}

/// Derives a [`PartitionSpec`] from a query's equality predicates and
/// per-type rate estimates.
pub struct QueryPartitioner;

impl QueryPartitioner {
    /// Classifies every event type the query uses, choosing the key
    /// assignment that keeps the largest total estimated rate partitioned
    /// (the low-rate remainder is replicated, following Dossinger &
    /// Michel's replicated-join heuristic). `rate` supplies events/ms
    /// estimates — [`MeasuredStats::rate`], live
    /// `StatsMonitor` rates, or any other source; unknown types may
    /// return `0.0`.
    ///
    /// The result is always sound: if no equality structure is usable, all
    /// types are replicated (exact on any shard count, no scale-out).
    ///
    /// # Errors
    /// Returns [`CepError::Plan`] if `branches` is empty.
    pub fn analyze(
        branches: &[CompiledPattern],
        rate: impl Fn(TypeId) -> f64,
    ) -> Result<PartitionSpec, CepError> {
        if branches.is_empty() {
            return Err(CepError::Plan(
                "cannot partition a query with zero branches".into(),
            ));
        }
        let graphs = branch_graphs(branches);
        let used: Vec<TypeId> = used_types(branches).into_iter().collect();
        let rate_of = |ty: TypeId| {
            let r = rate(ty);
            if r.is_finite() && r > 0.0 {
                r
            } else {
                0.0
            }
        };
        // Types in descending-rate order (deterministic tie-break on id):
        // greedy growth tries to keep the expensive types partitioned.
        let mut by_rate = used.clone();
        by_rate.sort_by(|&a, &b| {
            rate_of(b)
                .total_cmp(&rate_of(a))
                .then_with(|| a.0.cmp(&b.0))
        });
        // Candidate key attributes per type: every attribute that appears
        // in an equality-graph node of one of the type's elements.
        let mut candidate_attrs: BTreeMap<TypeId, BTreeSet<usize>> = BTreeMap::new();
        for (branch, graph) in branches.iter().zip(&graphs) {
            for &(slot, attr) in graph.nodes.keys().chain(graph.neg_links.keys()) {
                candidate_attrs
                    .entry(slot_type(branch, slot))
                    .or_default()
                    .insert(attr);
            }
        }
        let valid = |attrs: &HashMap<TypeId, usize>| {
            branches
                .iter()
                .zip(&graphs)
                .all(|(b, g)| valid_for(b, g, attrs).is_ok())
        };
        // Try each candidate anchor (type, attr); grow greedily; keep the
        // assignment with the largest partitioned rate mass.
        let mut best: Option<(f64, usize, HashMap<TypeId, usize>)> = None;
        for &anchor_ty in &by_rate {
            for &anchor_attr in candidate_attrs.get(&anchor_ty).into_iter().flatten() {
                let mut attrs = HashMap::from([(anchor_ty, anchor_attr)]);
                if !valid(&attrs) {
                    continue;
                }
                for &ty in by_rate.iter().filter(|&&t| t != anchor_ty) {
                    for &attr in candidate_attrs.get(&ty).into_iter().flatten() {
                        attrs.insert(ty, attr);
                        if valid(&attrs) {
                            break;
                        }
                        attrs.remove(&ty);
                    }
                }
                let score: f64 = attrs.keys().map(|&t| rate_of(t)).sum();
                let count = attrs.len();
                let better = match &best {
                    None => true,
                    Some((s, c, _)) => {
                        score.total_cmp(s).then_with(|| count.cmp(c)) == std::cmp::Ordering::Greater
                    }
                };
                if better {
                    best = Some((score, count, attrs));
                }
            }
        }
        let attrs = best.map(|(_, _, a)| a).unwrap_or_default();
        Ok(PartitionSpec {
            dispositions: used
                .into_iter()
                .map(|ty| {
                    let d = match attrs.get(&ty) {
                        Some(&attr) => TypeDisposition::Partitioned { attr },
                        None => TypeDisposition::Replicated,
                    };
                    (ty, d)
                })
                .collect(),
        })
    }

    /// [`analyze`](QueryPartitioner::analyze) with rates taken from
    /// measured statistics.
    pub fn analyze_measured(
        branches: &[CompiledPattern],
        stats: &MeasuredStats,
    ) -> Result<PartitionSpec, CepError> {
        Self::analyze(branches, |ty| stats.rate(ty))
    }
}

/// Checks whether every branch of the query is partition-local on the
/// *single* attribute `attr` — the condition under which plain
/// hash-by-attribute routing (every type hashed on the same attribute
/// index) is exact. This is what legacy `HashAttr` routing assumes.
pub fn partition_local_on(branches: &[CompiledPattern], attr: usize) -> Result<(), CepError> {
    if branches.is_empty() {
        return Err(CepError::Routing(
            "cannot check partition-locality of zero branches".into(),
        ));
    }
    for (bi, (branch, graph)) in branches.iter().zip(branch_graphs(branches)).enumerate() {
        let attrs: HashMap<TypeId, usize> = used_types(std::slice::from_ref(branch))
            .into_iter()
            .map(|t| (t, attr))
            .collect();
        valid_for(branch, &graph, &attrs).map_err(|why| {
            CepError::Routing(format!(
                "query is not partition-local on attribute {attr} (branch {bi}: {why})"
            ))
        })?;
    }
    Ok(())
}

/// All event types referenced by any positive or negated element.
fn used_types(branches: &[CompiledPattern]) -> BTreeSet<TypeId> {
    branches
        .iter()
        .flat_map(|cp| {
            cp.elements
                .iter()
                .map(|e| e.event_type)
                .chain(cp.negated.iter().map(|n| n.event_type))
        })
        .collect()
}

/// Element slots of one branch: positives are `0..n`, negated elements
/// follow at `n..n + negated.len()`.
fn slot_type(cp: &CompiledPattern, slot: usize) -> TypeId {
    let n = cp.n();
    if slot < n {
        cp.elements[slot].event_type
    } else {
        cp.negated[slot - n].event_type
    }
}

fn slot_is_negated(cp: &CompiledPattern, slot: usize) -> bool {
    slot >= cp.n()
}

/// Equality graph of one branch.
///
/// Positive `(slot, attr)` nodes form a union-find connected by `==`
/// predicates **between two positive elements** — those are the only
/// equalities every engine enforces on the bound events of a match, so
/// only they may establish that two positive elements share a key. A
/// predicate between a positive and a negated element is recorded
/// separately in `neg_links`: it pins the negated element's key to that
/// positive node (the engines evaluate it against candidate negation
/// events), but it must **not** bridge positive components — a value
/// constraint on an *absent* event says nothing about the positives'
/// values. Predicates linking two negated elements are dropped entirely
/// (engines never evaluate them against a single candidate).
struct BranchGraph {
    nodes: HashMap<(usize, usize), usize>,
    uf: UnionFind,
    /// Negated `(slot, attr)` → positive node ids it is directly
    /// equality-linked to.
    neg_links: HashMap<(usize, usize), Vec<usize>>,
}

impl BranchGraph {
    fn node(&mut self, key: (usize, usize)) -> usize {
        match self.nodes.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.uf.make();
                self.nodes.insert(key, id);
                id
            }
        }
    }

    fn find(&self, id: usize) -> usize {
        self.uf.find(id)
    }

    fn union(&mut self, a: usize, b: usize) {
        self.uf.union(a, b);
    }

    /// Root of `(slot, attr)` if the node participates in any equality.
    fn root(&self, key: (usize, usize)) -> Option<usize> {
        self.nodes.get(&key).map(|&id| self.uf.find(id))
    }
}

fn branch_graphs(branches: &[CompiledPattern]) -> Vec<BranchGraph> {
    branches
        .iter()
        .map(|cp| {
            let mut g = BranchGraph {
                nodes: HashMap::new(),
                uf: UnionFind::new(),
                neg_links: HashMap::new(),
            };
            let slot_of = |position: usize| -> Option<usize> {
                cp.elem_index(position).or_else(|| {
                    cp.negated
                        .iter()
                        .position(|ne| ne.position == position)
                        .map(|k| cp.n() + k)
                })
            };
            for p in &cp.predicates {
                if p.op != CmpOp::Eq {
                    continue;
                }
                let (
                    Operand::Attr {
                        position: pa,
                        attr: aa,
                    },
                    Operand::Attr {
                        position: pb,
                        attr: ab,
                    },
                ) = (&p.left, &p.right)
                else {
                    continue;
                };
                if pa == pb {
                    continue;
                }
                let (Some(sa), Some(sb)) = (slot_of(*pa), slot_of(*pb)) else {
                    continue;
                };
                match (slot_is_negated(cp, sa), slot_is_negated(cp, sb)) {
                    (false, false) => {
                        let na = g.node((sa, *aa));
                        let nb = g.node((sb, *ab));
                        g.union(na, nb);
                    }
                    (false, true) => {
                        let na = g.node((sa, *aa));
                        g.neg_links.entry((sb, *ab)).or_default().push(na);
                    }
                    (true, false) => {
                        let nb = g.node((sb, *ab));
                        g.neg_links.entry((sa, *aa)).or_default().push(nb);
                    }
                    (true, true) => {}
                }
            }
            g
        })
        .collect()
}

/// The soundness check: with `attrs` assigning a key attribute to each
/// partitioned type, are all of this branch's partitioned elements
/// guaranteed to share one key value in every match?
fn valid_for(
    cp: &CompiledPattern,
    graph: &BranchGraph,
    attrs: &HashMap<TypeId, usize>,
) -> Result<(), String> {
    let slots: Vec<usize> = (0..cp.n() + cp.negated.len())
        .filter(|&s| attrs.contains_key(&slot_type(cp, s)))
        .collect();
    if slots.is_empty() {
        return Ok(()); // replicated-only branch: every shard detects it
    }
    let (positive, negated): (Vec<usize>, Vec<usize>) =
        slots.iter().partition(|&&s| !slot_is_negated(cp, s));
    if positive.is_empty() {
        return Err(format!(
            "type {} appears only negated with no positive key anchor",
            slot_type(cp, slots[0]).0
        ));
    }
    if slots.len() == 1 {
        return Ok(()); // a single positive element keys the match by itself
    }
    // Positive elements must share one key component through positive-only
    // equality edges — the predicates every match is guaranteed to satisfy.
    let mut root = None;
    for &s in &positive {
        let ty = slot_type(cp, s);
        let attr = attrs[&ty];
        let Some(r) = graph.root((s, attr)) else {
            return Err(format!(
                "element of type {} is not equality-linked on attribute {attr}",
                ty.0
            ));
        };
        if *root.get_or_insert(r) != r {
            return Err(format!(
                "partitioned elements split into disconnected key groups \
                 (type {} links to a different component)",
                ty.0
            ));
        }
    }
    let root = root.expect("at least one positive slot was checked");
    // Negated elements must be *directly* equality-linked to a positive in
    // that component: only a positive-to-negated predicate is evaluated
    // against candidate negation events, so only it pins their key.
    for &s in &negated {
        let ty = slot_type(cp, s);
        let attr = attrs[&ty];
        let anchored = graph
            .neg_links
            .get(&(s, attr))
            .is_some_and(|links| links.iter().any(|&p| graph.find(p) == root));
        if !anchored {
            return Err(format!(
                "negated element of type {} is not directly key-linked to the \
                 partitioned component on attribute {attr}",
                ty.0
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBuilder;
    use crate::predicate::Predicate;

    fn t(i: u32) -> TypeId {
        TypeId(i)
    }

    /// SEQ(A a, B b, C c) with a.0 == b.0 — C is unkeyed.
    fn cross_key_branch() -> CompiledPattern {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let bb = b.event(t(1), "b");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        CompiledPattern::compile_single(&b.seq([a, bb, c]).unwrap()).unwrap()
    }

    fn rates(pairs: &[(u32, f64)]) -> impl Fn(TypeId) -> f64 + '_ {
        move |ty| {
            pairs
                .iter()
                .find(|(i, _)| TypeId(*i) == ty)
                .map(|&(_, r)| r)
                .unwrap_or(0.0)
        }
    }

    #[test]
    fn unkeyed_type_is_replicated() {
        let cp = cross_key_branch();
        let spec =
            QueryPartitioner::analyze(&[cp], rates(&[(0, 1.0), (1, 0.5), (2, 0.01)])).unwrap();
        assert_eq!(
            spec.disposition(t(0)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(spec.disposition(t(2)), Some(TypeDisposition::Replicated));
        assert!(!spec.is_fully_partitioned());
        assert!(!spec.is_fully_replicated());
        assert_eq!(spec.partitioned_types().count(), 2);
        assert_eq!(spec.replicated_types().collect::<Vec<_>>(), vec![t(2)]);
    }

    #[test]
    fn fully_keyed_query_is_fully_partitioned() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let bb = b.event(t(1), "b");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        b.predicate(Predicate::attr_cmp(bb.pos(), 0, CmpOp::Eq, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, bb, c]).unwrap()).unwrap();
        let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
        assert!(spec.is_fully_partitioned());
        assert!(partition_local_on(&[cp], 0).is_ok());
    }

    #[test]
    fn key_may_cross_attribute_indices() {
        // a.1 == b.0: different attribute per type, one key.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let bb = b.event(t(1), "b");
        b.predicate(Predicate::attr_cmp(a.pos(), 1, CmpOp::Eq, bb.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, bb]).unwrap()).unwrap();
        let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
        assert_eq!(
            spec.disposition(t(0)),
            Some(TypeDisposition::Partitioned { attr: 1 })
        );
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        // ...but it is NOT partition-local on any single attribute index.
        assert!(partition_local_on(std::slice::from_ref(&cp), 0).is_err());
        assert!(partition_local_on(std::slice::from_ref(&cp), 1).is_err());
    }

    #[test]
    fn no_equality_structure_replicates_everything() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let c = b.event(t(1), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Lt, c.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, c]).unwrap()).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], |_| 1.0).unwrap();
        assert!(spec.is_fully_replicated());
    }

    #[test]
    fn single_element_pattern_is_partitioned_without_links() {
        // One positive element: the match is keyed by its own event; any
        // candidate attribute routes it wholly.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let a2 = b.event(t(0), "a2");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, a2.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a, a2]).unwrap()).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], |_| 1.0).unwrap();
        assert_eq!(
            spec.disposition(t(0)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
    }

    #[test]
    fn same_type_with_unkeyed_second_occurrence_is_replicated() {
        // SEQ(A a1, A a2, B b) with a1.0 == b.0 but a2 free: routing A by
        // attribute 0 would strand a2 events of other keys, so A must be
        // replicated; B keeps no partner and collapses to replicated too
        // (a single partitioned type with one element per match is still
        // fine, so B stays partitioned).
        let mut b = PatternBuilder::new(100);
        let a1 = b.event(t(0), "a1");
        let a2 = b.event(t(0), "a2");
        let bb = b.event(t(1), "b");
        b.predicate(Predicate::attr_cmp(a1.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        let cp = CompiledPattern::compile_single(&b.seq([a1, a2, bb]).unwrap()).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], rates(&[(0, 1.0), (1, 0.5)])).unwrap();
        assert_eq!(spec.disposition(t(0)), Some(TypeDisposition::Replicated));
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
    }

    #[test]
    fn rate_mass_picks_the_partitioned_component() {
        // Two disjoint key components: (A,B) on attr 0 and (C,D) on attr 1.
        // Only one can be partitioned; the rate mass decides which.
        let build = || {
            let mut b = PatternBuilder::new(100);
            let a = b.event(t(0), "a");
            let bb = b.event(t(1), "b");
            let c = b.event(t(2), "c");
            let d = b.event(t(3), "d");
            b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, bb.pos(), 0));
            b.predicate(Predicate::attr_cmp(c.pos(), 1, CmpOp::Eq, d.pos(), 1));
            CompiledPattern::compile_single(&b.seq([a, bb, c, d]).unwrap()).unwrap()
        };
        let heavy_ab =
            QueryPartitioner::analyze(&[build()], rates(&[(0, 5.0), (1, 5.0), (2, 0.1), (3, 0.1)]))
                .unwrap();
        assert_eq!(
            heavy_ab.partitioned_types().collect::<Vec<_>>(),
            vec![t(0), t(1)]
        );
        let heavy_cd =
            QueryPartitioner::analyze(&[build()], rates(&[(0, 0.1), (1, 0.1), (2, 5.0), (3, 5.0)]))
                .unwrap();
        assert_eq!(
            heavy_cd.partitioned_types().collect::<Vec<_>>(),
            vec![t(2), t(3)]
        );
    }

    #[test]
    fn negated_type_keyed_through_positive_stays_partitioned() {
        // SEQ(A a, NOT(N n), B b) with a.0 == b.0 and n.0 == a.0: the
        // negated type is pinned to the key through a positive element.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let n = b.event(t(1), "n");
        let c = b.event(t(2), "b");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        b.predicate(Predicate::attr_cmp(n.pos(), 0, CmpOp::Eq, a.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(n);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], |_| 1.0).unwrap();
        assert!(spec.is_fully_partitioned());
    }

    #[test]
    fn unkeyed_negated_type_is_replicated() {
        // NOT(N) with no equality link: any shard missing an N event would
        // emit a false match, so N must be broadcast.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let n = b.event(t(1), "n");
        let c = b.event(t(2), "b");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(n);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], |_| 1.0).unwrap();
        assert_eq!(spec.disposition(t(1)), Some(TypeDisposition::Replicated));
        assert_eq!(spec.partitioned_types().count(), 2);
    }

    /// Regression: `a.0 == n.0` and `n.0 == c.0` with NOT(N) must **not**
    /// place A and C in one key component — those predicates are only
    /// evaluated against candidate negation events, so a match may bind
    /// `a.0 != c.0` (whenever no violating N exists). Treating them as
    /// key-equal produced an unsound spec that lost cross-shard matches.
    #[test]
    fn positives_bridged_only_through_a_negated_element_are_not_key_linked() {
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let n = b.event(t(1), "n");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, n.pos(), 0));
        b.predicate(Predicate::attr_cmp(n.pos(), 0, CmpOp::Eq, c.pos(), 0));
        let ae = b.expr(a);
        let ne = b.not(n);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, ne, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let spec = QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0).unwrap();
        assert!(
            !spec.is_fully_partitioned(),
            "A and C are not key-equal; partitioning both is unsound: {spec}"
        );
        // The anchor keeps one positive side plus the negated type (still
        // pinned to that side's key); the other positive side replicates.
        assert_eq!(
            spec.disposition(t(0)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(spec.disposition(t(2)), Some(TypeDisposition::Replicated));
        spec.validate(std::slice::from_ref(&cp)).unwrap();
        // A hand-built spec partitioning all three must be rejected.
        let bad = PartitionSpec::new([
            (t(0), TypeDisposition::Partitioned { attr: 0 }),
            (t(1), TypeDisposition::Partitioned { attr: 0 }),
            (t(2), TypeDisposition::Partitioned { attr: 0 }),
        ]);
        assert!(bad.validate(std::slice::from_ref(&cp)).is_err());
        assert!(partition_local_on(std::slice::from_ref(&cp), 0).is_err());
    }

    #[test]
    fn negated_negated_equality_pins_no_key() {
        // n1.0 == n2.0 with n2.0 == a.0: engines check each negated
        // element against positives only, so the n1–n2 edge must not count
        // — n1 has no positive-mediated link and must be replicated.
        let mut b = PatternBuilder::new(100);
        let a = b.event(t(0), "a");
        let n1 = b.event(t(1), "n1");
        let n2 = b.event(t(2), "n2");
        let c = b.event(t(3), "c");
        b.predicate(Predicate::attr_cmp(a.pos(), 0, CmpOp::Eq, c.pos(), 0));
        b.predicate(Predicate::attr_cmp(n1.pos(), 0, CmpOp::Eq, n2.pos(), 0));
        b.predicate(Predicate::attr_cmp(n2.pos(), 0, CmpOp::Eq, a.pos(), 0));
        let ae = b.expr(a);
        let n1e = b.not(n1);
        let n2e = b.not(n2);
        let ce = b.expr(c);
        let p = b.seq_exprs([ae, n1e, n2e, ce]).unwrap();
        let cp = CompiledPattern::compile_single(&p).unwrap();
        let spec = QueryPartitioner::analyze(&[cp], |_| 1.0).unwrap();
        assert_eq!(spec.disposition(t(1)), Some(TypeDisposition::Replicated));
        assert_eq!(
            spec.disposition(t(2)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
    }

    #[test]
    fn multi_branch_single_element_rule_keeps_type_partitioned() {
        // Branch 1 keys A–B on attr 0; branch 2 uses a *single* A with C:
        // the lone A keys its branch by itself, so A may stay partitioned
        // even though branch 2 carries no equality for it.
        let mut b = PatternBuilder::new(100);
        let a1 = b.event(t(0), "a1");
        let bb = b.event(t(1), "b");
        let a2 = b.event(t(0), "a2");
        let c = b.event(t(2), "c");
        b.predicate(Predicate::attr_cmp(a1.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        let s1 = crate::pattern::PatternExpr::Seq(vec![b.expr(a1), b.expr(bb)]);
        let s2 = crate::pattern::PatternExpr::Seq(vec![b.expr(a2), b.expr(c)]);
        let p = b.or_exprs([s1, s2]).unwrap();
        let branches = CompiledPattern::compile(&p).unwrap();
        assert_eq!(branches.len(), 2);
        let spec = QueryPartitioner::analyze(&branches, rates(&[(0, 1.0), (1, 2.0)])).unwrap();
        assert_eq!(
            spec.disposition(t(0)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        assert_eq!(spec.disposition(t(2)), Some(TypeDisposition::Replicated));
        spec.validate(&branches).unwrap();
    }

    #[test]
    fn multi_branch_unlinked_pair_forces_replication() {
        // Branch 2 binds *two* unlinked A events: no key can hold them on
        // one shard, so A must be replicated globally — classification is
        // per type, and the weakest branch wins.
        let mut b = PatternBuilder::new(100);
        let a1 = b.event(t(0), "a1");
        let bb = b.event(t(1), "b");
        let a2 = b.event(t(0), "a2");
        let a3 = b.event(t(0), "a3");
        b.predicate(Predicate::attr_cmp(a1.pos(), 0, CmpOp::Eq, bb.pos(), 0));
        let s1 = crate::pattern::PatternExpr::Seq(vec![b.expr(a1), b.expr(bb)]);
        let s2 = crate::pattern::PatternExpr::Seq(vec![b.expr(a2), b.expr(a3)]);
        let p = b.or_exprs([s1, s2]).unwrap();
        let branches = CompiledPattern::compile(&p).unwrap();
        let spec = QueryPartitioner::analyze(&branches, rates(&[(0, 1.0), (1, 2.0)])).unwrap();
        assert_eq!(spec.disposition(t(0)), Some(TypeDisposition::Replicated));
        assert_eq!(
            spec.disposition(t(1)),
            Some(TypeDisposition::Partitioned { attr: 0 })
        );
        spec.validate(&branches).unwrap();
    }

    #[test]
    fn validate_rejects_unsound_hand_built_specs() {
        let cp = cross_key_branch();
        // Partitioning the unkeyed type C is unsound.
        let bad = PartitionSpec::new([
            (t(0), TypeDisposition::Partitioned { attr: 0 }),
            (t(1), TypeDisposition::Partitioned { attr: 0 }),
            (t(2), TypeDisposition::Partitioned { attr: 0 }),
        ]);
        let err = bad.validate(std::slice::from_ref(&cp)).unwrap_err();
        assert!(matches!(err, CepError::Routing(_)), "{err}");
        // Missing coverage is rejected too.
        let partial = PartitionSpec::new([(t(0), TypeDisposition::Partitioned { attr: 0 })]);
        assert!(partial.validate(std::slice::from_ref(&cp)).is_err());
        // The analyzer's own output validates.
        QueryPartitioner::analyze(std::slice::from_ref(&cp), |_| 1.0)
            .unwrap()
            .validate(std::slice::from_ref(&cp))
            .unwrap();
    }

    #[test]
    fn empty_branches_rejected() {
        assert!(QueryPartitioner::analyze(&[], |_| 1.0).is_err());
        assert!(partition_local_on(&[], 0).is_err());
        assert!(PartitionSpec::default().validate(&[]).is_err());
    }

    #[test]
    fn display_renders_dispositions() {
        let spec = PartitionSpec::new([
            (t(0), TypeDisposition::Partitioned { attr: 2 }),
            (t(1), TypeDisposition::Replicated),
        ]);
        assert_eq!(spec.to_string(), "{T0: partitioned(a2), T1: replicated}");
    }
}
