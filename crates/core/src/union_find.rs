//! A small union-find (disjoint-set) structure.
//!
//! Extracted from the partition-analysis equality graph so that other
//! analyses — notably the congruence-closure pass in `cep-analyze` —
//! can share the same machinery instead of re-implementing it.

/// Disjoint-set forest over dense `usize` ids.
///
/// Ids are allocated with [`UnionFind::make`] and merged with
/// [`UnionFind::union`]. The representative of a class is always the
/// smallest id that was merged into it, which keeps results
/// deterministic regardless of union order.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// Creates an empty structure.
    pub fn new() -> UnionFind {
        UnionFind::default()
    }

    /// Allocates a fresh singleton class and returns its id.
    pub fn make(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    /// Number of allocated ids.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no ids have been allocated.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the representative of `id`'s class.
    ///
    /// Takes `&self` (no path compression) so lookups work on shared
    /// references; chains stay short because unions always point the
    /// larger root at the smaller one.
    pub fn find(&self, mut id: usize) -> usize {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    /// Merges the classes of `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Whether `a` and `b` are currently in the same class.
    pub fn same(&self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let a = uf.make();
        let b = uf.make();
        assert_eq!(uf.find(a), a);
        assert_eq!(uf.find(b), b);
        assert!(!uf.same(a, b));
        assert_eq!(uf.len(), 2);
    }

    #[test]
    fn union_uses_smallest_id_as_representative() {
        let mut uf = UnionFind::new();
        let ids: Vec<usize> = (0..5).map(|_| uf.make()).collect();
        uf.union(ids[3], ids[4]);
        uf.union(ids[4], ids[1]);
        assert_eq!(uf.find(ids[3]), ids[1]);
        assert_eq!(uf.find(ids[4]), ids[1]);
        assert!(uf.same(ids[1], ids[3]));
        assert!(!uf.same(ids[0], ids[1]));
        uf.union(ids[0], ids[3]);
        assert_eq!(uf.find(ids[4]), ids[0]);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make();
        let b = uf.make();
        uf.union(a, b);
        uf.union(a, b);
        uf.union(b, a);
        assert!(uf.same(a, b));
    }
}
