//! Event streams and stream assembly.

use crate::error::CepError;
use crate::event::{Event, EventRef, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory event stream, ordered by timestamp.
pub type EventStream = Vec<EventRef>;

/// Assembles an [`EventStream`], assigning stream coordinates.
///
/// The builder assigns the global serial number `seq`, and the per-partition
/// serial number `part_seq` used by the partition-contiguity strategy.
/// Events must be pushed in non-decreasing timestamp order; this is asserted
/// because both engines and the cost models assume ts-ordered streams.
#[derive(Debug, Default)]
pub struct StreamBuilder {
    events: EventStream,
    partition_counters: HashMap<u32, u64>,
    last_ts: Timestamp,
}

impl StreamBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event to partition 0.
    ///
    /// # Panics
    /// Panics on out-of-order timestamps; see [`StreamBuilder::try_push`]
    /// for the fallible variant and the ordering contract.
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.push_partitioned(event, 0)
    }

    /// Appends an event to the given partition.
    ///
    /// # Panics
    /// Panics if the event's timestamp is smaller than the previous event's;
    /// CEP input streams are ordered by occurrence time. Use
    /// [`StreamBuilder::try_push_partitioned`] to surface the violation as a
    /// [`CepError::OutOfOrder`] instead (e.g. when assembling a stream from
    /// a router or other untrusted source).
    pub fn push_partitioned(&mut self, event: Event, partition: u32) -> &mut Self {
        if let Err(e) = self.try_push_partitioned(event, partition) {
            panic!("{e}");
        }
        self
    }

    /// Fallibly appends an event to partition 0; see
    /// [`StreamBuilder::try_push_partitioned`].
    pub fn try_push(&mut self, event: Event) -> Result<&mut Self, CepError> {
        self.try_push_partitioned(event, 0)
    }

    /// Fallibly appends an event to the given partition.
    ///
    /// # Ordering contract
    ///
    /// Events must be pushed in non-decreasing `ts` order *globally*, not
    /// merely within each partition: the builder assigns the global serial
    /// number `seq` from arrival order, and engines, cost models, and the
    /// contiguity strategies all assume `ts`-ordered, `seq`-monotone
    /// streams. An event behind the watermark (the largest timestamp
    /// accepted so far) is rejected with [`CepError::OutOfOrder`] and the
    /// builder is left unchanged — equal timestamps are fine and keep their
    /// arrival order.
    pub fn try_push_partitioned(
        &mut self,
        mut event: Event,
        partition: u32,
    ) -> Result<&mut Self, CepError> {
        if event.ts < self.last_ts {
            return Err(CepError::OutOfOrder {
                ts: event.ts,
                last_ts: self.last_ts,
            });
        }
        self.last_ts = event.ts;
        event.seq = self.events.len() as u64;
        event.partition = partition;
        let ctr = self.partition_counters.entry(partition).or_insert(0);
        event.part_seq = *ctr;
        *ctr += 1;
        self.events.push(Arc::new(event));
        Ok(self)
    }

    /// Number of events pushed so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is still empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the stream.
    pub fn build(self) -> EventStream {
        self.events
    }
}

/// Merges several ts-ordered streams into one, reassigning stream
/// coordinates. Ties are broken by input index, keeping merges deterministic.
pub fn merge_streams(streams: Vec<EventStream>) -> EventStream {
    let mut cursors: Vec<usize> = vec![0; streams.len()];
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = StreamBuilder::new();
    for _ in 0..total {
        let mut best: Option<(usize, Timestamp)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(e) = s.get(cursors[i]) {
                if best.is_none_or(|(_, bts)| e.ts < bts) {
                    best = Some((i, e.ts));
                }
            }
        }
        let (i, _) = best.expect("cursor accounting");
        let ev = (*streams[i][cursors[i]]).clone();
        let partition = ev.partition;
        out.push_partitioned(ev, partition);
        cursors[i] += 1;
    }
    out.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TypeId;

    fn ev(ts: u64) -> Event {
        Event::new(TypeId(0), ts, vec![])
    }

    #[test]
    fn seq_numbers_are_assigned() {
        let mut b = StreamBuilder::new();
        b.push(ev(1)).push(ev(2)).push(ev(2));
        let s = b.build();
        assert_eq!(s.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn partition_seq_numbers_are_per_partition() {
        let mut b = StreamBuilder::new();
        b.push_partitioned(ev(1), 7);
        b.push_partitioned(ev(2), 8);
        b.push_partitioned(ev(3), 7);
        let s = b.build();
        assert_eq!(s[0].part_seq, 0);
        assert_eq!(s[1].part_seq, 0);
        assert_eq!(s[2].part_seq, 1);
        assert_eq!(s[2].partition, 7);
    }

    #[test]
    #[should_panic(expected = "non-decreasing ts order")]
    fn out_of_order_push_panics() {
        let mut b = StreamBuilder::new();
        b.push(ev(5)).push(ev(4));
    }

    #[test]
    fn out_of_order_try_push_errors_and_leaves_builder_unchanged() {
        let mut b = StreamBuilder::new();
        b.try_push(ev(5)).unwrap();
        let err = b.try_push(ev(4)).unwrap_err();
        assert_eq!(err, CepError::OutOfOrder { ts: 4, last_ts: 5 });
        // The rejected event left no trace: coordinates keep advancing as if
        // it was never offered.
        b.try_push(ev(5)).unwrap();
        let s = b.build();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s[1].part_seq, 1);
    }

    #[test]
    fn try_push_partitioned_accepts_equal_timestamps() {
        let mut b = StreamBuilder::new();
        b.try_push_partitioned(ev(3), 1).unwrap();
        b.try_push_partitioned(ev(3), 2).unwrap();
        let s = b.build();
        assert_eq!(s[0].partition, 1);
        assert_eq!(s[1].partition, 2);
        assert_eq!(s[1].part_seq, 0);
    }

    #[test]
    fn merge_is_ordered_and_renumbered() {
        let mut a = StreamBuilder::new();
        a.push(ev(1)).push(ev(5));
        let mut b = StreamBuilder::new();
        b.push(ev(2)).push(ev(3));
        let merged = merge_streams(vec![a.build(), b.build()]);
        let ts: Vec<u64> = merged.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![1, 2, 3, 5]);
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn builder_len_tracking() {
        let mut b = StreamBuilder::new();
        assert!(b.is_empty());
        b.push(ev(0));
        assert_eq!(b.len(), 1);
    }
}
