//! # cep-core
//!
//! Core data model for the CEP stack reproducing Kolchinsky & Schuster,
//! *Join Query Optimization Techniques for Complex Event Processing
//! Applications* (VLDB 2018).
//!
//! This crate defines everything that is shared between the two evaluation
//! engines (`cep-nfa`, `cep-tree`) and the plan-generation algorithms
//! (`cep-optimizer`):
//!
//! * the event and stream model ([`event`], [`schema`], [`stream`]),
//! * the pattern language of Section 2.1 ([`pattern`], [`predicate`],
//!   [`selection`]),
//! * the Section 5 transformations to pure conjunctive form ([`compile`]),
//! * the compiled predicate pipeline — fused evaluators and the
//!   signature-keyed plan cache ([`compiled`]),
//! * order-based and tree-based evaluation plans ([`plan`]),
//! * the cost models of Sections 3, 4 and 6 ([`cost`]),
//! * statistics acquisition ([`stats`]) and the query graph ([`query_graph`]),
//! * replicate-join partition analysis for sharded execution ([`partition`]),
//! * runtime support shared by engines: matches ([`mod@matches`]), negation
//!   intervals ([`negation`]), metrics ([`metrics`]), the [`engine`] trait,
//! * and a [`naive`] exhaustive oracle used as the semantic ground truth in
//!   tests.

#![warn(missing_docs)]

pub mod buffer;
pub mod compile;
pub mod compiled;
pub mod cost;
pub mod engine;
pub mod error;
pub mod event;
pub mod instance;
pub mod matches;
pub mod metrics;
pub mod naive;
pub mod negation;
pub mod partition;
pub mod pattern;
pub mod plan;
pub mod predicate;
pub mod query_graph;
pub mod registry;
pub mod schema;
pub mod selection;
pub mod span;
pub mod stats;
pub mod stream;
pub mod union_find;
pub mod value;

/// Commonly used items, re-exported for `use cep_core::prelude::*`.
pub mod prelude {
    pub use crate::compile::{CompiledPattern, Element, NaryOp, NegatedElement};
    pub use crate::compiled::{
        shared_plan_cache, CompiledPredicate, PlanCache, PredicateProgram, SharedPlanCache,
    };
    pub use crate::cost::CostModel;
    pub use crate::engine::{
        run_to_completion, run_traced, Engine, EngineConfig, EngineFactory, RunResult,
    };
    pub use crate::error::CepError;
    pub use crate::event::{Event, Timestamp, TypeId};
    pub use crate::matches::{Binding, Match};
    pub use crate::metrics::EngineMetrics;
    pub use crate::partition::{PartitionSpec, QueryPartitioner, TypeDisposition};
    pub use crate::pattern::{Pattern, PatternBuilder, PatternExpr};
    pub use crate::plan::{OrderPlan, TreeNode, TreePlan};
    pub use crate::predicate::{CmpOp, Operand, Predicate};
    pub use crate::registry::{
        FragmentBuilder, QueryId, QueryRegistry, RegistrySpec, SetPlanReport,
    };
    pub use crate::schema::{Catalog, EventSchema, ValueKind};
    pub use crate::selection::SelectionStrategy;
    pub use crate::span::Span;
    pub use crate::stats::{MeasuredStats, PatternStats};
    pub use crate::stream::{EventStream, StreamBuilder};
    pub use crate::value::Value;
    pub use cep_obs::{LatencyHistogram, MetricsRegistry, TraceRecord, Tracer};
}
