//! Property-based tests on the core data structures and invariants.

use cep_core::buffer::TypeBuffers;
use cep_core::compile::CompiledPattern;
use cep_core::event::{Event, TypeId};
use cep_core::pattern::{PatternBuilder, PatternExpr};
use cep_core::plan::{OrderPlan, TreeNode, TreePlan};
use cep_core::predicate::{CmpOp, Predicate};
use cep_core::stats::PatternStats;
use cep_core::value::Value;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Buffer pruning keeps exactly the events still inside the window and
    /// `len()` stays consistent with per-type contents.
    #[test]
    fn buffer_prune_invariant(
        events in prop::collection::vec((0u32..4, 0u64..100), 0..60),
        window in 1u64..30,
    ) {
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(_, ts)| ts);
        let mut buf = TypeBuffers::new();
        let mut watermark = 0;
        for (i, &(ty, ts)) in sorted.iter().enumerate() {
            let mut e = Event::new(TypeId(ty), ts, vec![]);
            e.seq = i as u64;
            buf.push(Arc::new(e));
            watermark = ts;
        }
        buf.prune(watermark, window);
        let mut remaining = 0;
        for ty in 0..4u32 {
            for e in buf.iter_type(TypeId(ty)) {
                prop_assert!(e.ts + window >= watermark);
                remaining += 1;
            }
        }
        prop_assert_eq!(remaining, buf.len());
        let expected = sorted
            .iter()
            .filter(|&&(_, ts)| ts + window >= watermark)
            .count();
        prop_assert_eq!(buf.len(), expected);
    }

    /// DNF decomposition yields one branch per combination of OR operands:
    /// `AND(e, OR(k of them), OR(m of them))` has `k · m` branches, each
    /// covering one element from every OR.
    #[test]
    fn dnf_branch_count(k in 1usize..4, m in 1usize..4) {
        let mut b = PatternBuilder::new(10);
        let head = b.event(TypeId(0), "h");
        let or1: Vec<PatternExpr> = (0..k)
            .map(|i| {
                let e = b.event(TypeId(1 + i as u32), &format!("x{i}"));
                b.expr(e)
            })
            .collect();
        let or2: Vec<PatternExpr> = (0..m)
            .map(|i| {
                let e = b.event(TypeId(10 + i as u32), &format!("y{i}"));
                b.expr(e)
            })
            .collect();
        let he = b.expr(head);
        let p = b
            .and_exprs([he, PatternExpr::Or(or1), PatternExpr::Or(or2)])
            .unwrap();
        let branches = CompiledPattern::compile(&p).unwrap();
        prop_assert_eq!(branches.len(), k * m);
        for cp in &branches {
            prop_assert_eq!(cp.n(), 3);
            prop_assert!(cp.uses_type(TypeId(0)));
        }
    }

    /// An order plan accepts exactly the permutations of `0..n`.
    #[test]
    fn order_plan_permutation_check(order in prop::collection::vec(0usize..6, 1..6)) {
        let n = order.len();
        let mut seen = vec![false; n];
        let is_perm = order.iter().all(|&i| {
            if i < n && !seen[i] {
                seen[i] = true;
                true
            } else {
                false
            }
        });
        prop_assert_eq!(OrderPlan::new(order).is_ok(), is_perm);
    }

    /// Flipping a comparison operator and swapping its operands preserves
    /// the predicate's value.
    #[test]
    fn predicate_flip_symmetry(
        a in -50i64..50,
        bval in -50i64..50,
        opc in 0u8..6,
    ) {
        let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ne, CmpOp::Ge, CmpOp::Gt][opc as usize];
        let ea = Event::new(TypeId(0), 0, vec![Value::Int(a)]);
        let mut eb = Event::new(TypeId(1), 1, vec![Value::Int(bval)]);
        eb.seq = 1;
        let p = Predicate::attr_cmp(0, 0, op, 1, 0);
        let q = Predicate::attr_cmp(1, 0, op.flip(), 0, 0);
        prop_assert_eq!(p.eval_pair(0, &ea, 1, &eb), q.eval_pair(0, &ea, 1, &eb));
    }

    /// `pm_of_set` is permutation-invariant (the property the DP planners
    /// rely on) and monotonically shrinks under sub-unit selectivities.
    #[test]
    fn pm_of_set_is_order_free(
        rates in prop::collection::vec(0.1f64..3.0, 4..=4),
        sel_raw in prop::collection::vec(0.05f64..1.0, 16..=16),
        w in 1.0f64..20.0,
    ) {
        let n = 4;
        let mut sel = vec![vec![1.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                sel[i][j] = sel_raw[i * n + j];
                sel[j][i] = sel_raw[i * n + j];
            }
        }
        let stats = PatternStats::synthetic(w, rates, sel);
        let a = stats.pm_of_set(&[0, 1, 2, 3]);
        let b = stats.pm_of_set(&[3, 1, 0, 2]);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        // Supersets with sel <= 1 and W·r >= threshold grow or shrink
        // consistently with the added factor.
        let sub = stats.pm_of_set(&[0, 1]);
        let factor = stats.count_in_window(2)
            * stats.sel[2][2]
            * stats.sel[2][0]
            * stats.sel[2][1];
        let sup = stats.pm_of_set(&[0, 1, 2]);
        prop_assert!((sup - sub * factor).abs() <= 1e-9 * sup.abs().max(1.0));
    }

    /// Tree plans expose their leaves in order and left-deep construction
    /// round-trips through `OrderPlan`.
    #[test]
    fn left_deep_tree_roundtrip(order in prop::collection::vec(0usize..8, 1..8)) {
        // Make a permutation out of the raw draw.
        let n = order.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by_key(|&i| (order[i], i));
        let plan = OrderPlan::new(perm.clone()).unwrap();
        let tree = TreePlan::left_deep(&plan);
        prop_assert!(tree.root.is_left_deep());
        prop_assert_eq!(tree.root.leaves(), perm);
        prop_assert_eq!(tree.len(), n);
    }

    /// `TreeNode::leaf_mask` is consistent with `leaves()`.
    #[test]
    fn leaf_mask_matches_leaves(split in 1usize..5) {
        let n = 6;
        let leaves: Vec<usize> = (0..n).collect();
        let tree = TreeNode::join(
            TreeNode::left_deep(&leaves[..split]),
            TreeNode::left_deep(&leaves[split..]),
        );
        let mask = tree.leaf_mask();
        for &l in &tree.leaves() {
            prop_assert!(mask & (1 << l) != 0);
        }
        prop_assert_eq!(mask.count_ones() as usize, n);
    }
}
