//! Offline, dependency-light subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this vendored shim
//! implements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], numeric-range strategies, tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], and
//! [`Strategy::prop_map`]. Sampling is deterministic per test (seeded by
//! case index); failing cases report their inputs but are not shrunk.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Accepted for API compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching upstream's `with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking; a
/// strategy is simply something that can be sampled from an RNG.
pub trait Strategy {
    /// The type of values produced.
    type Value: core::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy producing a fixed value, like upstream's `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategies for built-in types (\[`any`\]).
pub mod arbitrary {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + core::fmt::Debug {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            rng.gen_range(0u16..256) as u8
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut StdRng) -> i64 {
            rng.gen::<u64>() as i64
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen_range(-1.0e9f64..1.0e9)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A range of collection sizes; converted from `usize` ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

/// Error type test-case closures may return, mirroring upstream's
/// `TestCaseError` (only ever constructed by user code in this shim).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Deterministic per-test RNG used by the [`proptest!`] runner.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // test gets an independent but reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x9e37_79b9)
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supports the same surface syntax the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0u8..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $(let $arg = $strat;)*
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                    // Record the sampled inputs so a failing case can
                    // report them (upstream prints the shrunk input; this
                    // shim prints the raw draw).
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&format!(
                        concat!("  ", stringify!($arg), " = {:?}\n"),
                        &$arg,
                    ));)*
                    // Upstream proptest runs bodies inside a closure
                    // returning `Result<(), TestCaseError>`, so bodies may
                    // `return Ok(())` to skip a case.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body
                                #[allow(unreachable_code)]
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case rejected: {e:?}\ninputs (case {case}):\n{inputs}"
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest `{}` failed at case {case} with inputs:\n{inputs}",
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..5,
            v in prop::collection::vec((0u8..3, -2i64..3), 0..8),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(v.len() < 8);
            for &(a, b) in &v {
                prop_assert!(a < 3);
                prop_assert!((-2..3).contains(&b));
            }
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(y in (0u8..4, 0u8..4).prop_map(|(a, b)| a as u16 + b as u16)) {
            prop_assert!(y <= 6);
        }
    }
}
