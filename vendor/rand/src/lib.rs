//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the exact surface the workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! repository's seeded benchmarks and stream generators require.

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-sampling routine over `[lo, hi)` / `[lo, hi]`.
///
/// A single blanket [`SampleRange`] impl over this trait (rather than one
/// impl per concrete range type) is what lets integer literals in
/// `rng.gen_range(100..800)` infer their type from the call site, exactly
/// as the real `rand` does.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` via 128-bit multiply-shift reduction.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening multiply avoids modulo bias well beyond the precision any
    // caller in this workspace needs.
    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    // (x * span) >> 128, computed in pieces to stay within u128.
    let hi = (x >> 64) * span;
    let lo = ((x & u64::MAX as u128) * span) >> 64;
    (hi + lo) >> 64
}

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = f64::gen_standard(rng) as $t;
                let v = lo + unit * (hi - lo);
                // `lo + unit * (hi - lo)` can round up to exactly `hi`
                // (e.g. when `lo` is large relative to the span); the
                // half-open contract requires v < hi, as upstream rand
                // guards too.
                if !inclusive && v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::gen_standard(self) < p
    }

    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::sample_below(rng, (i + 1) as u128) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::sample_below(rng, self.len() as u128) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_range_stays_half_open_under_rounding() {
        // `lo + unit * (hi - lo)` rounds up to exactly `hi` when `lo` is
        // large relative to the span; the contract is `[lo, hi)`.
        let mut rng = StdRng::seed_from_u64(11);
        let (lo, hi) = (1.0e16f64, 1.0e16 + 2.0);
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "v={v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-3i8..4);
            assert!((-3..4).contains(&v));
            let f = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let u = rng.gen_range(10usize..=10);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
