//! Offline, dependency-free subset of the `criterion` benchmark API.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `bench_with_input` / `finish`),
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It performs a simple warm-up plus timed
//! sample loop and prints mean wall time per iteration — no statistics,
//! plots, or baseline storage.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so user code can use `criterion::black_box` if desired.
pub use std::hint::black_box;

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: String::new(),
        }
    }
}

/// Runs the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the configured budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once),
        // tracking iterations so we can estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let warm_elapsed = loop {
            black_box(routine());
            warm_iters += 1;
            let e = warm_start.elapsed();
            if e >= self.warm_up_time {
                break e;
            }
        };
        // Plan the measured iteration count up front from the warm-up
        // estimate, so the measured loop contains no clock reads — a
        // per-iteration `Instant::elapsed()` would dominate the timing of
        // sub-microsecond routines. Like real criterion, the measurement
        // budget decides the iteration count (fast routines amortize one
        // Instant pair over many calls) and `sample_size` is the floor,
        // so slow routines still get that many measured calls.
        let est_per_iter = warm_elapsed.as_secs_f64() / warm_iters as f64;
        let budget_iters = if est_per_iter > 0.0 {
            (self.measurement_time.as_secs_f64() / est_per_iter) as u64
        } else {
            u64::MAX
        };
        let planned = budget_iters.clamp(self.sample_size.max(1) as u64, 100_000_000);
        let start = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = planned;
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            // The bench closure never called `iter()`; there is nothing
            // to report (and 0/0 would print NaN).
            println!("bench: {label:<48} skipped (iter() not called)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!(
            "bench: {label:<48} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            self.iterations
        );
    }
}

/// A named group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, label));
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        self.run_one(label, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label();
        self.run_one(label, |b| f(b, input));
        self
    }

    /// Finishes the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Units for [`BenchmarkGroup::throughput`]; accepted but unused.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the default measurement budget for subsequent groups.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up_time, measurement_time) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            warm_up_time,
            measurement_time,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(String::new(), |b| f(b));
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags (e.g.
            // `--bench`); this shim runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls >= 3);
    }
}
